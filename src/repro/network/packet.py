"""Network packets.

A packet carries an application payload (any Python object — usually an MQTT
packet or an NGSI sync message) plus the metadata links and security
components need: source/destination, size, and an optional wire
representation.  When a payload has been encrypted, ``wire_bytes`` holds the
ciphertext and eavesdroppers see only that; otherwise taps see the payload
itself (the paper's plaintext-eavesdropping threat).
"""

import itertools
from typing import Any, Dict, Optional

_packet_ids = itertools.count(1)


class Packet:
    __slots__ = (
        "packet_id",
        "src",
        "dst",
        "payload",
        "size_bytes",
        "wire_bytes",
        "created_at",
        "flow",
        "headers",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        payload: Any,
        size_bytes: int,
        created_at: float,
        wire_bytes: Optional[bytes] = None,
        flow: str = "",
        headers: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size_bytes = size_bytes
        self.wire_bytes = wire_bytes
        self.created_at = created_at
        # Flow label, e.g. "mqtt", "ngsi-sync", "attack:flood"; the SDN layer
        # keys its flow table on (src, dst, flow).
        self.flow = flow
        self.headers = headers or {}

    @property
    def encrypted(self) -> bool:
        return self.wire_bytes is not None

    def observable(self) -> Any:
        """What a passive tap on the wire can read."""
        return self.wire_bytes if self.encrypted else self.payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        enc = " enc" if self.encrypted else ""
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B flow={self.flow!r}{enc})"
        )
