"""Network substrate: nodes, links, radio models, partitions.

Models the connectivity the SWAMP pilots run over: constrained field radio
(LoRa-class links from sensor nodes to a farm gateway), farm LAN between
gateway/fog components, and a WAN backhaul from the farm to the cloud that
can be partitioned (the paper's "Internet disconnection" availability
scenario) or flooded (DoS).

The substrate is intentionally message-level, not bit-level: a packet is a
payload with size metadata; links apply latency, bandwidth serialization,
loss and optional taps (eavesdroppers, SDN flow accounting).
"""

from repro.network.packet import Packet
from repro.network.node import NetworkNode
from repro.network.link import Link, LinkState
from repro.network.radio import RadioModel, LORA_FIELD, WIFI_FARM, ETHERNET_LAN, WAN_BACKHAUL
from repro.network.topology import Network

__all__ = [
    "ETHERNET_LAN",
    "LORA_FIELD",
    "Link",
    "LinkState",
    "Network",
    "NetworkNode",
    "Packet",
    "RadioModel",
    "WAN_BACKHAUL",
    "WIFI_FARM",
]
