"""Typed load-shedding primitives: bounded queues and admission windows.

DoS-class stress (E4) and long partitions (E9) both turn into unbounded
queues somewhere unless every buffering point has a cap *and a stated
policy* for what happens at the cap.  This module provides the two shapes
used across the platform:

* :class:`BoundedQueue` — a FIFO with a hard capacity and a
  :class:`DropPolicy` deciding which end loses (the MQTT broker's
  per-client offline queue uses ``DROP_OLDEST``: during a long partition
  the freshest telemetry survives, matching the replicator's own
  oldest-first overflow).
* :class:`RateLimiter` — a fixed-window admission gate computed lazily
  from the caller-supplied sim time.  It never schedules events and never
  draws randomness, so enabling one perturbs nothing about a run's event
  sequence; a closed window is decided entirely at the arrival that hits
  it.
"""

import enum
from collections import deque
from typing import Callable, Deque, Iterator, List, Optional

from repro.simkernel.errors import ReproError


class BackpressureError(ReproError):
    """Raised by a ``REJECT``-policy admission point when shedding load."""


class DropPolicy(enum.Enum):
    """What a full queue or closed admission window does with new work."""

    #: Evict from the head to make room: the newest item always gets in.
    DROP_OLDEST = "drop_oldest"
    #: Silently discard the arrival (the classic tail-drop).
    DROP_NEWEST = "drop_newest"
    #: Refuse loudly so the producer can react (error / nack / retry).
    REJECT = "reject"


class BoundedQueue:
    """FIFO with a hard capacity and a typed overflow policy.

    ``on_evict`` (if given) is called with every item lost to the policy —
    callers hook their drop counters there instead of wrapping ``push``.
    """

    __slots__ = ("capacity", "policy", "on_evict", "dropped", "_items")

    def __init__(
        self,
        capacity: int,
        policy: DropPolicy = DropPolicy.DROP_OLDEST,
        on_evict: Optional[Callable[[object], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.on_evict = on_evict
        self.dropped = 0
        self._items: Deque[object] = deque()

    def push(self, item: object) -> bool:
        """Append ``item``; returns False when the policy refused it."""
        if len(self._items) < self.capacity:
            self._items.append(item)
            return True
        self.dropped += 1
        if self.policy is DropPolicy.DROP_OLDEST:
            evicted = self._items.popleft()
            if self.on_evict is not None:
                self.on_evict(evicted)
            self._items.append(item)
            return True
        if self.on_evict is not None:
            self.on_evict(item)
        if self.policy is DropPolicy.REJECT:
            return False
        return False  # DROP_NEWEST: silently discarded

    def popleft(self) -> object:
        return self._items.popleft()

    def drain(self) -> List[object]:
        """Remove and return everything, oldest first."""
        items = list(self._items)
        self._items.clear()
        return items

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[object]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class RateLimiter:
    """Fixed-window admission gate driven by the sim clock.

    The window index is ``floor(now / window_s)``, recomputed at each
    ``admit`` call — no timers, no background resets, so an idle limiter
    is free and a run's event schedule is identical with or without one
    (only *deliveries* change, and only on the paths that consult it).
    """

    __slots__ = ("max_per_window", "window_s", "policy", "shed", "_window", "_count")

    def __init__(
        self,
        max_per_window: int,
        window_s: float = 1.0,
        policy: DropPolicy = DropPolicy.DROP_NEWEST,
    ) -> None:
        if max_per_window <= 0:
            raise ValueError(f"max_per_window must be positive, got {max_per_window}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.max_per_window = max_per_window
        self.window_s = window_s
        self.policy = policy
        self.shed = 0
        self._window = -1
        self._count = 0

    def admit(self, now: float) -> bool:
        window = int(now // self.window_s)
        if window != self._window:
            self._window = window
            self._count = 0
        if self._count >= self.max_per_window:
            self.shed += 1
            return False
        self._count += 1
        return True
