"""Resilience layer: supervision, load shedding and degraded-mode autonomy.

``supervisor`` watches services and restarts them with seeded backoff;
``breaker`` protects the cloud uplink with a half-open circuit breaker;
``backpressure`` provides bounded queues and admission windows for both
broker hot paths; ``degraded`` turns the paper's "irrigation keeps running
while disconnected" claim into an enforced state machine.  The layer is
wired into a pilot by ``repro.core.stages.ResilienceStage`` only when
``PilotConfig.resilience`` is set.
"""

from repro.resilience.backpressure import (
    BackpressureError,
    BoundedQueue,
    DropPolicy,
    RateLimiter,
)
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.config import ResilienceConfig
from repro.resilience.degraded import DegradedModePolicy
from repro.resilience.supervisor import HEALTH_VALUES, ServiceHealth, Supervisor, Watch

__all__ = [
    "BackpressureError",
    "BoundedQueue",
    "BreakerState",
    "CircuitBreaker",
    "DegradedModePolicy",
    "DropPolicy",
    "HEALTH_VALUES",
    "RateLimiter",
    "ResilienceConfig",
    "ServiceHealth",
    "Supervisor",
    "Watch",
]
