"""The Supervisor: sim-clock watchdogs over platform services.

PR 2 gave the platform ways to *break* (fault plans kill the replicator,
restart brokers, wedge devices); this service is the counterpart that
*notices* and *heals*.  Each watched service contributes either a health
probe (a pull-style ``probe(now) -> bool``) or a heartbeat (the service
calls ``watch.beat()`` from its hot path and the supervisor checks the
last beat against a staleness bound).  An unhealthy service with a
registered restart action is restarted under seeded exponential backoff;
repeated failures escalate ``restarting → degraded → failed`` so an
operator-facing dashboard (here: telemetry gauges) distinguishes a blip
from a lost service.

Determinism: the watchdog loop is ordinary scheduled sim work; probes are
read-only; the jitter stream (``resilience:supervisor``) is drawn *only*
when a restart is actually scheduled.  Supervising an entirely healthy
run therefore adds watchdog events to the queue but never reorders or
perturbs the platform's own events — and because the stage behind this
module is registered only when ``PilotConfig.resilience`` is set,
fault-free pinned fixtures never see those events at all.

Telemetry: ``resilience.health{service}`` gauges (1.0 healthy … 0.0
failed, see :data:`HEALTH_VALUES`), ``resilience.restarts{service}``
counters, plus the breaker instruments re-exposed via
:meth:`Supervisor.attach_breaker`.
"""

import enum
from typing import Callable, Dict, List, Optional

from repro.resilience.breaker import BREAKER_STATE_VALUES, BreakerState, CircuitBreaker
from repro.simkernel.simulator import Simulator


class ServiceHealth(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    RESTARTING = "restarting"
    DEGRADED = "degraded"
    FAILED = "failed"


#: Gauge encoding for ``resilience.health{service}``.
HEALTH_VALUES = {
    ServiceHealth.HEALTHY: 1.0,
    ServiceHealth.SUSPECT: 0.75,
    ServiceHealth.RESTARTING: 0.5,
    ServiceHealth.DEGRADED: 0.25,
    ServiceHealth.FAILED: 0.0,
}


class Watch:
    """One supervised service: its health source and restart policy."""

    __slots__ = (
        "name", "probe", "restart", "heartbeat_timeout_s",
        "state", "last_beat", "attempts", "restarts", "next_restart_at",
        "_sim", "_m_restarts",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        probe: Optional[Callable[[float], bool]] = None,
        restart: Optional[Callable[[], None]] = None,
        heartbeat_timeout_s: Optional[float] = None,
    ) -> None:
        if probe is None and heartbeat_timeout_s is None:
            raise ValueError(f"watch {name!r} needs a probe or a heartbeat timeout")
        self._sim = sim
        self.name = name
        self.probe = probe
        self.restart = restart
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.state = ServiceHealth.HEALTHY
        self.last_beat = sim.now
        self.attempts = 0       # consecutive restarts in the current episode
        self.restarts = 0       # lifetime restarts
        self.next_restart_at = 0.0
        self._m_restarts = sim.metrics.counter(
            "resilience.restarts", {"service": name}
        )

    def beat(self) -> None:
        """Heartbeat: called by the service itself from its hot path."""
        self.last_beat = self._sim.now

    def is_healthy(self, now: float) -> bool:
        if self.probe is not None and not self.probe(now):
            return False
        if (
            self.heartbeat_timeout_s is not None
            and now - self.last_beat > self.heartbeat_timeout_s
        ):
            return False
        return True


class Supervisor:
    """Watchdog loop restarting unhealthy services with seeded backoff."""

    def __init__(
        self,
        sim: Simulator,
        check_interval_s: float = 30.0,
        restart_backoff_initial_s: float = 5.0,
        restart_backoff_max_s: float = 600.0,
        degraded_after_restarts: int = 3,
        failed_after_restarts: int = 8,
    ) -> None:
        self.sim = sim
        self.check_interval_s = check_interval_s
        self.restart_backoff_initial_s = restart_backoff_initial_s
        self.restart_backoff_max_s = restart_backoff_max_s
        self.degraded_after_restarts = degraded_after_restarts
        self.failed_after_restarts = failed_after_restarts
        self.total_restarts = 0
        self._watches: List[Watch] = []
        self._by_name: Dict[str, Watch] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        # Fired as (service, old, new, now) on every watch state change.
        # The degraded-mode policy listens here: a fog node that the
        # supervisor sees isolated must enter autonomy even when the
        # uplink breaker has no traffic to fail on.
        self.on_state_change: List[
            Callable[[str, ServiceHealth, ServiceHealth, float], None]
        ] = []
        self._process = None
        # Restart jitter gets its own stream so supervision never perturbs
        # any other subsystem's RNG sequence — and draws nothing at all
        # while every service stays healthy.
        self._rng = sim.rng.stream("resilience:supervisor")

    # -- registration ------------------------------------------------------

    def watch(
        self,
        name: str,
        probe: Optional[Callable[[float], bool]] = None,
        restart: Optional[Callable[[], None]] = None,
        heartbeat_timeout_s: Optional[float] = None,
    ) -> Watch:
        """Supervise ``name``; returns the :class:`Watch` (for ``beat()``)."""
        if name in self._by_name:
            raise ValueError(f"service {name!r} already watched")
        watch = Watch(self.sim, name, probe=probe, restart=restart,
                      heartbeat_timeout_s=heartbeat_timeout_s)
        self._watches.append(watch)
        self._by_name[name] = watch
        self.sim.metrics.register_callback(
            "resilience.health",
            lambda w=watch: HEALTH_VALUES[w.state],
            {"service": name},
        )
        return watch

    def attach_breaker(self, name: str, breaker: CircuitBreaker) -> None:
        """Expose a circuit breaker's state as a supervised health gauge.

        The breaker stays in charge of its own transitions (it sees every
        outcome; the supervisor only samples) — this merely folds it into
        the ``resilience.health`` family and the trace stream.
        """
        self._breakers[name] = breaker
        self.sim.metrics.register_callback(
            "resilience.health",
            lambda b=breaker: 1.0 - BREAKER_STATE_VALUES[b.state],
            {"service": name},
        )
        breaker.on_state_change.append(
            lambda old, new, now, n=name: self.sim.trace.emit(
                now, "resilience", "breaker state change",
                breaker=n, old=old.value, new=new.value,
            )
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._process is not None and self._process.alive:
            return
        now = self.sim.now
        for watch in self._watches:
            watch.last_beat = now
        self._process = self.sim.spawn(self._loop(), "resilience:supervisor")

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.alive

    def _loop(self):
        while True:
            yield self.check_interval_s
            self.check_now()

    # -- the watchdog ------------------------------------------------------

    def check_now(self) -> None:
        """One watchdog pass (also callable directly from tests)."""
        now = self.sim.now
        for watch in self._watches:
            self._check(watch, now)

    def _set_state(self, watch: Watch, new: ServiceHealth, now: float) -> None:
        if watch.state is new:
            return
        old = watch.state
        watch.state = new
        for hook in self.on_state_change:
            hook(watch.name, old, new, now)

    def _check(self, watch: Watch, now: float) -> None:
        if watch.state is ServiceHealth.FAILED:
            return
        if watch.is_healthy(now):
            if watch.state is not ServiceHealth.HEALTHY:
                self.sim.trace.emit(
                    now, "resilience", "service recovered",
                    service=watch.name, after_restarts=watch.attempts,
                )
                self._set_state(watch, ServiceHealth.HEALTHY, now)
                watch.attempts = 0
            return
        if watch.state is ServiceHealth.HEALTHY:
            self._set_state(watch, ServiceHealth.SUSPECT, now)
            watch.next_restart_at = now
            self.sim.trace.emit(
                now, "resilience", "service unhealthy", service=watch.name
            )
        if watch.restart is None:
            # Nothing to do but surface it.
            self._set_state(watch, ServiceHealth.DEGRADED, now)
            return
        if now < watch.next_restart_at:
            return
        watch.attempts += 1
        if watch.attempts > self.failed_after_restarts:
            self._set_state(watch, ServiceHealth.FAILED, now)
            self.sim.trace.emit(
                now, "resilience", "service failed",
                service=watch.name, restarts=watch.restarts,
            )
            return
        self._set_state(
            watch,
            ServiceHealth.DEGRADED
            if watch.attempts > self.degraded_after_restarts
            else ServiceHealth.RESTARTING,
            now,
        )
        watch.restarts += 1
        self.total_restarts += 1
        watch._m_restarts.inc()
        self.sim.trace.emit(
            now, "resilience", "restarting service",
            service=watch.name, attempt=watch.attempts,
        )
        try:
            watch.restart()
        except Exception as exc:  # a failing restart is an unhealthy outcome, not a crash
            self.sim.trace.emit(
                now, "resilience", "restart raised",
                service=watch.name, error=type(exc).__name__,
            )
        # Grace for heartbeat-style watches: a restarted service starts
        # from a fresh beat instead of its pre-crash staleness.
        watch.last_beat = now
        delay = min(
            self.restart_backoff_initial_s * (2.0 ** (watch.attempts - 1)),
            self.restart_backoff_max_s,
        )
        delay *= 1.0 + self._rng.uniform(0.0, 0.25)
        watch.next_restart_at = now + delay

    # -- inspection --------------------------------------------------------

    def health(self, name: str) -> ServiceHealth:
        return self._by_name[name].state

    def states(self) -> Dict[str, str]:
        """Service name → health state (diagnostics, chaos invariants)."""
        return {watch.name: watch.state.value for watch in self._watches}

    def breaker_states(self) -> Dict[str, str]:
        return {name: breaker.state.value for name, breaker in self._breakers.items()}
