"""Half-open circuit breaker for the fog→cloud uplink (and friends).

The replicator's retry loop is exactly the unbounded-retry amplifier the
fog-security literature warns about: during a WAN outage every sync tick
retransmits into a dead link.  A breaker turns that into mechanical
degradation — after ``failure_threshold`` consecutive failures the circuit
OPENs and transmission stops; after ``open_timeout_s`` of sim time one
HALF_OPEN trial probes the path; a success CLOSEs the circuit, a failure
re-OPENs it.  State transitions are announced through ``on_state_change``
listeners, which is how fog degraded-mode autonomy (see
:mod:`repro.resilience.degraded`) learns the cloud is unreachable without
polling.

Determinism: the breaker keeps no timers and draws no randomness — every
decision happens inside ``allow``/``record_*`` calls made from already
scheduled work, so attaching one never changes the event schedule of a
healthy run.
"""

import enum
from typing import Callable, List, Optional

from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding for ``resilience.breaker_state``: 0 is a healthy closed
#: circuit, 1 a fully open one.
BREAKER_STATE_VALUES = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 0.5,
    BreakerState.OPEN: 1.0,
}

StateListener = Callable[[BreakerState, BreakerState, float], None]


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN state machine over caller-reported outcomes.

    The owner calls :meth:`allow` before attempting the protected
    operation and :meth:`record_success` / :meth:`record_failure` with the
    outcome, always passing the current sim time.  HALF_OPEN admits a
    single outstanding trial: further :meth:`allow` calls return False
    until the trial's outcome is recorded.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        open_timeout_s: float = 300.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError(f"failure_threshold must be positive, got {failure_threshold}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.open_timeout_s = open_timeout_s
        self.opens = 0
        self.on_state_change: List[StateListener] = []
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trial_outstanding = False
        registry = metrics if metrics is not None else NULL_REGISTRY
        labels = {"breaker": name}
        self._m_opens = registry.counter("resilience.breaker_opens", labels)
        self._m_transitions = registry.counter("resilience.breaker_transitions", labels)
        registry.register_callback(
            "resilience.breaker_state",
            lambda: BREAKER_STATE_VALUES[self._state],
            labels,
        )

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self, now: float) -> bool:
        """May the protected operation be attempted right now?"""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if now - self._opened_at >= self.open_timeout_s:
                # Claim the trial slot *before* announcing the transition:
                # a listener that reentrantly calls ``allow`` (degraded-mode
                # hooks do) must see the probe already outstanding, or two
                # probes hit the half-open window.
                self._trial_outstanding = True
                self._transition(BreakerState.HALF_OPEN, now)
                return True
            return False
        # HALF_OPEN: one probe in flight at a time.
        if self._trial_outstanding:
            return False
        self._trial_outstanding = True
        return True

    def record_success(self, now: float) -> None:
        self._failures = 0
        self._trial_outstanding = False
        if self._state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        if self._state is BreakerState.OPEN:
            # Failures while OPEN carry no information (nothing was
            # attempted) and must not slide ``opened_at`` forward — the
            # half-open probe would otherwise never come due.
            return
        self._trial_outstanding = False
        if self._state is BreakerState.HALF_OPEN:
            self._open(now)
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._open(now)

    def _open(self, now: float) -> None:
        self._opened_at = now
        self._failures = 0
        self.opens += 1
        self._m_opens.inc()
        self._transition(BreakerState.OPEN, now)

    def _transition(self, new_state: BreakerState, now: float) -> None:
        old_state, self._state = self._state, new_state
        self._m_transitions.inc()
        for listener in self.on_state_change:
            listener(old_state, new_state, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, state={self._state.value})"
