"""Configuration for the resilience layer.

One dataclass gathers every knob so ``PilotConfig.resilience`` stays a
single optional field: ``None`` (the default) keeps the service graph —
and the seed-pinned event sequences of fault-free pilots — exactly as
they were before the layer existed.
"""

from dataclasses import dataclass
from typing import Optional

from repro.resilience.backpressure import DropPolicy


@dataclass
class ResilienceConfig:
    # -- supervisor --------------------------------------------------------
    #: Watchdog cadence: how often every health probe / heartbeat is read.
    check_interval_s: float = 30.0
    #: Seeded restart backoff: first retry delay, doubling per attempt.
    restart_backoff_initial_s: float = 5.0
    restart_backoff_max_s: float = 600.0
    #: Attempts after which a still-unhealthy service is surfaced as
    #: ``degraded`` (retries continue at the capped backoff) ...
    degraded_after_restarts: int = 3
    #: ... and after which the supervisor gives up entirely (``failed``).
    failed_after_restarts: int = 8
    #: Heartbeat staleness bound for the context broker watch (beats come
    #: from the update hot path, so this must exceed the longest quiet
    #: period of a healthy fleet).
    context_heartbeat_timeout_s: float = 2 * 3600.0

    # -- cloud-uplink circuit breaker --------------------------------------
    breaker_failure_threshold: int = 3
    breaker_open_timeout_s: float = 300.0

    # -- fog degraded-mode autonomy ----------------------------------------
    #: Staleness bound for last-known-good context while the uplink is
    #: open: the scheduler keeps deciding on data up to this old.
    degraded_max_data_age_s: float = 72 * 3600.0
    #: Journal capacity for decisions taken while degraded (oldest-first
    #: eviction; reconciled to the cloud on reconnect).
    journal_limit: int = 512

    # -- admission control (None disables each hook) -----------------------
    broker_inbound_limit_per_s: Optional[int] = None
    broker_inbound_policy: DropPolicy = DropPolicy.DROP_NEWEST
    context_update_limit_per_s: Optional[int] = None
    context_update_policy: DropPolicy = DropPolicy.DROP_NEWEST
