"""Fog degraded-mode autonomy: the disconnection-availability state machine.

SWAMP's fog pilots exist because the irrigation loop must keep running
when the Internet link to the cloud is down.  Before this module that
property was *emergent* — the scheduler happened to read the local fog
context, which happened to stay fresh.  This policy makes it an enforced
state machine driven by the union of two isolation signals:

* the cloud-uplink circuit breaker opening (the replicator's sync
  batches are failing — the Internet link is down), and
* the supervisor marking a watched connectivity service unhealthy (the
  fog node's own links are dead; there may be *no* uplink traffic for
  the breaker to fail on, so the breaker alone cannot see this).

While any reason is active the policy is ``enter()``-ed: the scheduler's
staleness bound is widened to ``degraded_max_data_age_s`` so decisions
continue on last-known-good context (still *bounded*: data older than
the widened limit is refused, never silently trusted), and every
decision taken while degraded is journaled locally (bounded,
oldest-first eviction).  When the *last* reason clears → ``exit()``: the
original staleness bound is restored and the journal is *reconciled* —
written into the fog context as an ``IrrigationJournal`` entity, which
the replicator ships cloudward like any other update, so the cloud
learns what the farm decided while it was unreachable.

Telemetry: ``resilience.degraded_mode`` gauge (1 while degraded),
``resilience.degraded_episodes`` / ``resilience.degraded_decisions`` /
``resilience.reconciled_decisions`` counters.
"""

from typing import List, Optional, Set

from repro.resilience.backpressure import BoundedQueue, DropPolicy
from repro.resilience.breaker import BreakerState
from repro.resilience.supervisor import ServiceHealth
from repro.simkernel.simulator import Simulator


class DegradedModePolicy:
    """Switches the irrigation scheduler between normal and degraded mode.

    ``scheduler`` needs ``max_data_age_s`` (mutable) and an
    ``on_decision`` hook list; ``context`` needs ``ensure_entity`` /
    ``update_attributes`` — i.e. a :class:`PlatformScheduler` and a
    :class:`ContextBroker`, duck-typed so tests can substitute stubs.
    """

    NORMAL = "normal"
    DEGRADED = "degraded"

    def __init__(
        self,
        sim: Simulator,
        scheduler,
        context,
        farm: str,
        degraded_max_data_age_s: float = 72 * 3600.0,
        journal_limit: int = 512,
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.context = context
        self.entity_id = f"urn:IrrigationJournal:{farm}"
        self.degraded_max_data_age_s = degraded_max_data_age_s
        self.mode = self.NORMAL
        # Watched connectivity services: an unhealthy verdict from the
        # supervisor on any of these is an isolation signal of its own.
        self.isolation_services: Set[str] = set()
        self._reasons: Set[str] = set()
        self.episodes = 0
        self.journaled = 0
        self.reconciled = 0
        self.entered_at: Optional[float] = None
        self._saved_max_age: Optional[float] = None
        self.journal = BoundedQueue(journal_limit, DropPolicy.DROP_OLDEST)
        registry = sim.metrics
        self._m_episodes = registry.counter("resilience.degraded_episodes")
        self._m_decisions = registry.counter("resilience.degraded_decisions")
        self._m_reconciled = registry.counter("resilience.reconciled_decisions")
        registry.register_callback(
            "resilience.degraded_mode",
            lambda: 1.0 if self.mode == self.DEGRADED else 0.0,
        )

    # -- isolation signals -------------------------------------------------

    def add_reason(self, reason: str, now: float) -> None:
        """Raise an isolation signal; the first one enters degraded mode."""
        was_clear = not self._reasons
        self._reasons.add(reason)
        if was_clear and self.mode == self.NORMAL:
            self.enter(now)

    def clear_reason(self, reason: str, now: float) -> None:
        """Drop an isolation signal; clearing the last one exits."""
        self._reasons.discard(reason)
        if not self._reasons and self.mode == self.DEGRADED:
            self.exit(now)

    def on_breaker_state(self, old: BreakerState, new: BreakerState, now: float) -> None:
        """Listener for ``CircuitBreaker.on_state_change``."""
        if new is BreakerState.OPEN:
            self.add_reason("uplink:open", now)
        elif new is BreakerState.CLOSED:
            self.clear_reason("uplink:open", now)
        # HALF_OPEN is a probe, not a verdict: stay in the current mode.

    def on_service_state(
        self, name: str, old: ServiceHealth, new: ServiceHealth, now: float
    ) -> None:
        """Listener for ``Supervisor.on_state_change``.

        Only services in :attr:`isolation_services` count, and only their
        hard verdicts — SUSPECT is a single missed check, not isolation.
        """
        if name not in self.isolation_services:
            return
        if new in (ServiceHealth.DEGRADED, ServiceHealth.FAILED):
            self.add_reason(f"service:{name}", now)
        elif new is ServiceHealth.HEALTHY:
            self.clear_reason(f"service:{name}", now)

    # -- mode transitions --------------------------------------------------

    def enter(self, now: float) -> None:
        self.mode = self.DEGRADED
        self.entered_at = now
        self.episodes += 1
        self._m_episodes.inc()
        self._saved_max_age = self.scheduler.max_data_age_s
        self.scheduler.max_data_age_s = max(
            self.degraded_max_data_age_s, self._saved_max_age
        )
        self.sim.trace.emit(
            now, "resilience", "degraded mode entered",
            farm_entity=self.entity_id, max_data_age_s=self.scheduler.max_data_age_s,
        )

    def exit(self, now: float) -> None:
        self.mode = self.NORMAL
        if self._saved_max_age is not None:
            self.scheduler.max_data_age_s = self._saved_max_age
            self._saved_max_age = None
        duration = now - self.entered_at if self.entered_at is not None else 0.0
        self.entered_at = None
        self.sim.trace.emit(
            now, "resilience", "degraded mode exited",
            duration_s=round(duration, 3),
        )
        self.reconcile(now)

    # -- journal -----------------------------------------------------------

    def record_decision(self, entry: dict) -> None:
        """Scheduler ``on_decision`` hook: journal while degraded."""
        if self.mode != self.DEGRADED:
            return
        self.journal.push(dict(entry))
        self.journaled += 1
        self._m_decisions.inc()

    def reconcile(self, now: float) -> None:
        """Ship the journal cloudward through the normal replication path."""
        entries: List[dict] = [dict(e) for e in self.journal.drain()]
        if not entries:
            return
        self.context.ensure_entity(self.entity_id, "IrrigationJournal")
        self.context.update_attributes(
            self.entity_id,
            {
                "reconciledAt": now,
                "entryCount": len(entries),
                "droppedEntries": self.journal.dropped,
                "decisions": entries,
            },
        )
        self.reconciled += len(entries)
        self._m_reconciled.inc(len(entries))
        self.sim.trace.emit(
            now, "resilience", "journal reconciled", entries=len(entries),
        )
