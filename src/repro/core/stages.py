"""Builder stages: a :class:`PilotConfig` as a declarative assembly plan.

The old ``PilotRunner.__init__`` was a ~200-line monolith that built
security, tiers, physics, devices and the scheduler inline.  Each
architectural layer now lives in one :class:`BuildStage` that registers
named services — with declared dependencies — on the runner's
:class:`~repro.platform.registry.PlatformRuntime`.  The runtime then
drives them through register → configure → start, and its shutdown is
hooked into the simulator so services wind down when the run ends.

Determinism contract: registration order is a valid topological order of
the declared dependencies, and the runtime starts the earliest-registered
ready service first, so the services run in *exactly* the order the old
monolith ran its builder methods.  Event-queue sequence numbers — and
therefore whole seed-pinned runs — stay bit-identical
(``tests/test_pilot_pinned.py`` holds that pin).

The service graph::

    security.stack ──► platform.tiers ──► messaging.agent ─┬─► devices.fleet
                                       physics.environment ─┘        │
                                                          devices.provisioning
                                                                     │
                                                           decision.scheduler
                                                                     │
                                             security.detection ── security.command_tap
"""

from typing import List

from repro.agents.iot_agent import DeviceProvision, IoTAgent
from repro.core.security_profile import SecurityStack
from repro.devices.actuators import CenterPivot, Pump, Valve
from repro.devices.base import DeviceConfig
from repro.devices.drone import Drone
from repro.devices.sensors import SoilMoistureProbe, WaterFlowMeter, WeatherStation
from repro.devices.sweep import SweepScheduler
from repro.faults.injector import FaultInjector
from repro.fog.node import CloudNode, FogNode
from repro.fog.replication import CloudSyncTarget, Replicator
from repro.irrigation.policy import SoilMoisturePolicy
from repro.irrigation.scheduler import PlatformScheduler
from repro.network.link import LinkState
from repro.network.radio import ETHERNET_LAN, LORA_FIELD, WAN_BACKHAUL
from repro.physics.field import Field
from repro.physics.ndvi import NdviTracker
from repro.physics.weather import WeatherGenerator
from repro.resilience import (
    CircuitBreaker,
    DegradedModePolicy,
    RateLimiter,
    Supervisor,
)


class BuildStage:
    """One architectural layer of a pilot.

    ``register`` adds this layer's services to ``runner.runtime``; the
    service ``start`` callables do the actual construction against the
    runner, so the runner keeps its flat attribute surface (``.agent``,
    ``.field``, ...) that tests and experiments rely on.
    """

    def register(self, runner) -> None:
        raise NotImplementedError


class SecurityLayerStage(BuildStage):
    """Identity, OAuth/PDP/PEP and the detection scaffolding."""

    def register(self, runner) -> None:
        def start(runtime):
            runner.security = SecurityStack(
                runner.sim, runner.config.farm, runner.config.security
            )
            service.provides = runner.security

        service = runner.runtime.register("security.stack", start=start)


class FogCloudStage(BuildStage):
    """Cloud node, optional fog node, replication and the WAN topology."""

    def register(self, runner) -> None:
        def start(runtime):
            self._start(runner)
            service.provides = {
                "cloud": runner.cloud,
                "fog": runner.fog,
                "replicator": runner.replicator,
                "broker_address": runner.broker_address,
            }

        service = runner.runtime.register(
            "platform.tiers", depends_on=("security.stack",), start=start
        )

    def _start(self, runner) -> None:
        config = runner.config
        hooks = runner.security.broker_hooks()
        runner.cloud = CloudNode(
            runner.sim, runner.net, "cloud",
            with_mqtt=not config.deployment.has_fog,
            authenticator=hooks["authenticator"], authorizer=hooks["authorizer"],
        )
        runner.fog = None
        runner.replicator = None
        if config.deployment.has_fog:
            runner.fog = FogNode(
                runner.sim, runner.net, "fog", config.farm,
                authenticator=hooks["authenticator"], authorizer=hooks["authorizer"],
            )
            runner.broker_address = runner.fog.mqtt_address
            runner.context = runner.fog.context
            runner.history = runner.fog.history
            runner.agent = runner.fog.agent
            runner.net.connect("fog:iota", runner.fog.mqtt_address, ETHERNET_LAN)
            # Store-and-forward sync to the cloud over the rural WAN.
            CloudSyncTarget(runner.sim, runner.net, "cloud:sync", runner.cloud.context)
            runner.replicator = Replicator(
                runner.sim, runner.net, "fog:sync", runner.fog.context, "cloud:sync",
                sync_interval_s=60.0,
            )
            runner.net.connect("fog:sync", "cloud:sync", WAN_BACKHAUL)
            runner._wan_pair = ("fog:sync", "cloud:sync")
            runner._device_uplink = runner.broker_address
            runner._device_radio = LORA_FIELD
        else:
            runner.broker_address = runner.cloud.mqtt_address
            runner.context = runner.cloud.context
            runner.history = runner.cloud.history
            runner.agent = IoTAgent(
                runner.sim, runner.net, "cloud:iota", runner.broker_address,
                runner.cloud.context, config.farm,
            )
            runner.net.connect("cloud:iota", runner.broker_address, ETHERNET_LAN)
            # Farm gateway: field radio on one side, rural WAN on the other.
            from repro.network.node import NetworkNode

            runner.gateway = runner.net.add_node(NetworkNode(f"{config.farm}:gw"))
            runner.net.connect(f"{config.farm}:gw", runner.broker_address, WAN_BACKHAUL)
            runner._wan_pair = (f"{config.farm}:gw", runner.broker_address)
            runner._device_uplink = f"{config.farm}:gw"
            runner._device_radio = LORA_FIELD


class MessagingStage(BuildStage):
    """Attach the IoT agent to the security stack and open its MQTT session."""

    def register(self, runner) -> None:
        def start(runtime):
            runner.security.wire_agent(runner.agent)
            runner.agent.start()
            service.provides = runner.agent

        service = runner.runtime.register(
            "messaging.agent",
            depends_on=("security.stack", "platform.tiers"),
            start=start,
        )


class PhysicsStage(BuildStage):
    """Field zones, a season of weather and the NDVI trackers."""

    def register(self, runner) -> None:
        def start(runtime):
            self._start(runner)
            service.provides = runner.field

        service = runner.runtime.register("physics.environment", start=start)

    def _start(self, runner) -> None:
        config = runner.config
        runner.field = Field(
            config.farm, config.rows, config.cols, config.soil, config.crop,
            runner.sim.rng.stream("field"),
            zone_area_ha=config.zone_area_ha,
            spatial_cv=config.spatial_cv,
            initial_theta=config.initial_theta,
        )
        generator = WeatherGenerator(
            config.climate, runner.sim.rng.stream("weather"),
            start_day_of_year=config.start_day_of_year,
        )
        runner.weather = generator.generate(config.effective_season_days + 1)
        runner.ndvi_trackers = {
            zone.zone_id: NdviTracker(zone) for zone in runner.field
        }
        runner._forecast_rng = runner.sim.rng.stream("forecast")


class DeviceNetworkStage(BuildStage):
    """The device fleet, its radio links and its agent provisioning."""

    def register(self, runner) -> None:
        def start_fleet(runtime):
            self._build_devices(runner)

        def start_provisioning(runtime):
            self._provision_devices(runner)

        runner.runtime.register(
            "devices.fleet",
            depends_on=("messaging.agent", "physics.environment"),
            start=start_fleet,
        )
        runner.runtime.register(
            "devices.provisioning", depends_on=("devices.fleet",),
            start=start_provisioning,
        )

    @staticmethod
    def _attach_device(runner, device) -> None:
        """Connect a device's radio and register its credentials."""
        runner.net.connect(device.client.address, runner._device_uplink,
                           runner._device_radio)
        runner.security.enroll_device(device, device_key=f"key-{device.config.device_id}")
        device.sweeper = runner.sweep_scheduler
        device.start()

    def _build_devices(self, runner) -> None:
        config = runner.config
        farm = config.farm
        runner.probes = {}
        runner.valves = {}
        runner.pivot = None
        runner.drone = None
        # Batched sampling: one SweepScheduler per farm; devices enroll in
        # start() instead of spawning a firmware-loop process each.
        runner.sweep_scheduler = (
            SweepScheduler(runner.sim, farm) if config.batched_sampling else None
        )

        # Shared irrigation plant.
        runner.pump = Pump(
            runner.sim, runner.net,
            DeviceConfig(f"{farm}-pump", farm, "Pump", report_interval_s=3600),
            runner.broker_address, head_m=config.pump_head_m,
        )
        self._attach_device(runner, runner.pump)
        runner.flow_meter = WaterFlowMeter(
            runner.sim, runner.net,
            DeviceConfig(f"{farm}-flow", farm, "FlowMeter", report_interval_s=3600),
            runner.broker_address,
        )
        self._attach_device(runner, runner.flow_meter)

        runner.weather_station = WeatherStation(
            runner.sim, runner.net,
            DeviceConfig(f"{farm}-ws", farm, "WeatherStation", report_interval_s=3600),
            runner.broker_address,
        )
        self._attach_device(runner, runner.weather_station)

        # Probes on the first `coverage` fraction of zones (deterministic).
        zones = list(runner.field)
        probe_count = max(1, round(config.probe_coverage * len(zones)))
        for zone in zones[:probe_count]:
            device_id = f"{farm}-probe-{zone.row}-{zone.col}"
            probe = SoilMoistureProbe(
                runner.sim, runner.net,
                DeviceConfig(device_id, farm, "SoilProbe",
                             report_interval_s=config.probe_interval_s),
                runner.broker_address, zone=zone,
            )
            self._attach_device(runner, probe)
            runner.probes[zone.zone_id] = probe

        if config.irrigation_kind == "valves":
            for zone in zones:
                device_id = f"{farm}-valve-{zone.row}-{zone.col}"
                valve = Valve(
                    runner.sim, runner.net,
                    DeviceConfig(device_id, farm, "Valve", report_interval_s=7200),
                    runner.broker_address, zone=zone,
                    rate_mm_h=config.valve_rate_mm_h,
                    pump=runner.pump, flow_meter=runner.flow_meter,
                )
                self._attach_device(runner, valve)
                runner.valves[zone.zone_id] = valve
        elif config.irrigation_kind == "pivot":
            runner.pivot = CenterPivot(
                runner.sim, runner.net,
                DeviceConfig(f"{farm}-pivot", farm, "CenterPivot",
                             report_interval_s=7200),
                runner.broker_address, zones=zones,
                max_application_rate_mm_h=config.pivot_rate_mm_h, pump=runner.pump,
            )
            self._attach_device(runner, runner.pivot)

        if config.deployment.has_drone:
            runner.drone = Drone(
                runner.sim, runner.net,
                DeviceConfig(f"{farm}-drone", farm, "Drone", report_interval_s=7200,
                             battery_capacity_j=500_000.0),
                runner.broker_address, field=runner.field,
                trackers=runner.ndvi_trackers,
            )
            self._attach_device(runner, runner.drone)

    def _provision_devices(self, runner) -> None:
        farm = runner.config.farm
        for zone_id, probe in runner.probes.items():
            zone = runner.field.zone_by_id(zone_id)
            runner.agent.provision(
                DeviceProvision(
                    probe.config.device_id, "", runner.zone_entity_id(zone), "AgriParcel"
                )
            )
        for zone_id, valve in runner.valves.items():
            runner.agent.provision(
                DeviceProvision(
                    valve.config.device_id, "",
                    f"urn:Valve:{valve.config.device_id}", "Valve",
                    commands=("open", "close"),
                )
            )
        if runner.pivot is not None:
            runner.agent.provision(
                DeviceProvision(
                    runner.pivot.config.device_id, "",
                    f"urn:CenterPivot:{runner.pivot.config.device_id}", "CenterPivot",
                    commands=("start_pass", "stop"),
                )
            )
        runner.agent.provision(
            DeviceProvision(runner.pump.config.device_id, "",
                            f"urn:Pump:{farm}", "Pump", commands=("start", "stop"))
        )
        runner.agent.provision(
            DeviceProvision(runner.flow_meter.config.device_id, "",
                            f"urn:FlowMeter:{farm}", "FlowMeter")
        )
        runner.agent.provision(
            DeviceProvision(runner.weather_station.config.device_id, "",
                            f"urn:WeatherObserved:{farm}", "WeatherObserved")
        )
        if runner.drone is not None:
            runner.agent.provision(
                DeviceProvision(runner.drone.config.device_id, "",
                                f"urn:Drone:{farm}", "Drone", commands=("survey",))
            )


class DecisionLayerStage(BuildStage):
    """The irrigation scheduler (smart / fixed-calendar / none)."""

    def register(self, runner) -> None:
        def start(runtime):
            self._start(runner)
            service.provides = runner.scheduler

        service = runner.runtime.register(
            "decision.scheduler",
            depends_on=("devices.provisioning", "physics.environment"),
            start=start,
        )

    def _start(self, runner) -> None:
        config = runner.config
        runner.scheduler = None
        if config.scheduler_kind == "none" or config.irrigation_kind == "none":
            return
        if config.scheduler_kind == "fixed":
            # Registered as a factory so a checkpoint rebuild can respawn
            # it: generators don't pickle, factories replay (see
            # repro.core.checkpoint).
            runner.sim.register_process_factory(
                "fixed-scheduler", runner._fixed_schedule_loop
            )
            runner.sim.spawn_registered("fixed-scheduler")
            return
        runner.scheduler = PlatformScheduler(
            runner.sim, runner.context, runner.agent,
            policy=config.policy or SoilMoisturePolicy(),
            forecast_provider=runner._forecast_rain,
            supply_gate=config.supply_gate,
            uniform_pivot=config.uniform_pivot,
        )
        if config.irrigation_kind == "valves":
            for zone_id, probe in runner.probes.items():
                zone = runner.field.zone_by_id(zone_id)
                valve = runner.valves.get(zone_id)
                if valve is None:
                    continue
                runner.scheduler.bind_valve(
                    runner.zone_entity_id(zone), valve.config.device_id,
                    theta_fc=zone.water_balance.soil.theta_fc,
                    theta_wp=zone.water_balance.soil.theta_wp,
                    root_depth_m=zone.crop.root_depth_at(0),
                    depletion_fraction_p=zone.crop.stages[0].depletion_fraction_p,
                    area_ha=zone.area_ha,
                )
        elif config.irrigation_kind == "pivot":
            zone_bindings = []
            for zone_id, probe in runner.probes.items():
                zone = runner.field.zone_by_id(zone_id)
                zone_bindings.append(
                    {
                        "entity_id": runner.zone_entity_id(zone),
                        "zone_id": zone.zone_id,
                        "theta_fc": zone.water_balance.soil.theta_fc,
                        "theta_wp": zone.water_balance.soil.theta_wp,
                        "root_depth_m": zone.crop.root_depth_at(0),
                        "p": zone.crop.stages[0].depletion_fraction_p,
                        "area_ha": zone.area_ha,
                    }
                )
            runner.scheduler.bind_pivot(runner.pivot.config.device_id, zone_bindings)
        runner.scheduler.start()


class SecurityWiringStage(BuildStage):
    """Late security wiring that needs the assembled platform: anomaly
    detection over the context broker and the broker-side command tap."""

    def register(self, runner) -> None:
        def start_detection(runtime):
            runner.security.wire_detection(runner.context, runner.agent)

        def start_tap(runtime):
            runner.security.wire_command_tap(runner.net, runner.broker_address)

        runner.runtime.register(
            "security.detection",
            depends_on=("security.stack", "platform.tiers", "messaging.agent"),
            start=start_detection,
        )
        runner.runtime.register(
            "security.command_tap",
            depends_on=("security.stack", "platform.tiers"),
            start=start_tap,
        )


class FaultInjectionStage(BuildStage):
    """The fault injector, bound to the assembled pilot's targets.

    Appended to the stage list only when ``config.fault_plan`` is set, so
    fault-free pilots keep their exact service graph (and their bit-pinned
    event sequence) untouched.
    """

    def register(self, runner) -> None:
        def start(runtime):
            self._start(runner)
            service.provides = runner.fault_injector

        service = runner.runtime.register(
            "faults.injector",
            depends_on=("platform.tiers", "devices.fleet"),
            start=start,
        )

    def _start(self, runner) -> None:
        injector = FaultInjector(runner.sim, runner.net)
        if hasattr(runner, "_wan_pair"):
            injector.register_pair("wan", *runner._wan_pair)
        broker = runner.fog.mqtt if runner.fog is not None else runner.cloud.mqtt
        if broker is not None:
            # "broker" always means the broker the device fleet talks to.
            injector.register_broker("broker", broker)
        if runner.cloud.mqtt is not None:
            injector.register_broker("cloud", runner.cloud.mqtt)
        if runner.replicator is not None:
            injector.register_replicator("replicator", runner.replicator)
        if runner.fog is not None:
            injector.register_fog(
                "fog",
                broker=runner.fog.mqtt,
                replicator=runner.replicator,
                addresses=[runner.fog.mqtt_address, f"{runner.fog.name}:iota",
                           f"{runner.fog.name}:sync"],
            )
        for device in self._fleet(runner):
            injector.register_device(device)
        injector.apply(runner.config.fault_plan)
        runner.fault_injector = injector

    @staticmethod
    def _fleet(runner):
        yield runner.pump
        yield runner.flow_meter
        yield runner.weather_station
        for probe in runner.probes.values():
            yield probe
        for valve in runner.valves.values():
            yield valve
        if runner.pivot is not None:
            yield runner.pivot
        if runner.drone is not None:
            yield runner.drone


class ResilienceStage(BuildStage):
    """Supervision, admission control, uplink breaking, degraded autonomy.

    Appended to the stage list only when ``config.resilience`` is set —
    the same contract as :class:`FaultInjectionStage`: pilots without it
    keep their exact service graph and bit-pinned event sequence.
    """

    def register(self, runner) -> None:
        def start(runtime):
            self._start(runner)
            service.provides = runner.supervisor

        service = runner.runtime.register(
            "resilience.supervisor",
            depends_on=("platform.tiers", "decision.scheduler"),
            start=start,
        )

    def _start(self, runner) -> None:
        cfg = runner.config.resilience
        sim = runner.sim
        supervisor = Supervisor(
            sim,
            check_interval_s=cfg.check_interval_s,
            restart_backoff_initial_s=cfg.restart_backoff_initial_s,
            restart_backoff_max_s=cfg.restart_backoff_max_s,
            degraded_after_restarts=cfg.degraded_after_restarts,
            failed_after_restarts=cfg.failed_after_restarts,
        )
        runner.supervisor = supervisor

        # MQTT broker: the sweeper doubles as a liveness heartbeat, and a
        # wedged sweeper is restartable by re-arming it.
        broker = runner.fog.mqtt if runner.fog is not None else runner.cloud.mqtt
        if broker is not None:
            stale_after = 3.0 * broker._sweep_interval_s

            def rearm_sweeper(b=broker):
                b._sweeping = False
                b._start_sweeper()

            supervisor.watch(
                "mqtt.broker",
                probe=lambda now, b=broker, s=stale_after: now - b.last_sweep_at <= s,
                restart=rearm_sweeper,
            )
            if cfg.broker_inbound_limit_per_s:
                broker.inbound_limit = RateLimiter(
                    cfg.broker_inbound_limit_per_s, policy=cfg.broker_inbound_policy
                )

        # Context broker: heartbeat fed by the update hot path — a healthy
        # fleet updates context continuously, so silence means the path
        # from devices through the agent has wedged.  In-process, so there
        # is nothing to restart: unhealthy surfaces as ``degraded``.
        context_watch = supervisor.watch(
            "context.broker",
            heartbeat_timeout_s=cfg.context_heartbeat_timeout_s,
        )
        runner.context.update_hooks.append(
            lambda entity, changed, w=context_watch: w.beat()
        )
        if cfg.context_update_limit_per_s:
            runner.context.update_limit = RateLimiter(
                cfg.context_update_limit_per_s, policy=cfg.context_update_policy
            )

        # Replicator: the one genuinely crashable daemon (fault plans kill
        # it); the supervisor restarts it under seeded backoff.
        if runner.replicator is not None:
            supervisor.watch(
                "fog.replicator",
                probe=lambda now, r=runner.replicator: r.running,
                restart=runner.replicator.restart,
            )
            breaker = CircuitBreaker(
                "cloud-uplink",
                failure_threshold=cfg.breaker_failure_threshold,
                open_timeout_s=cfg.breaker_open_timeout_s,
                metrics=sim.metrics,
            )
            runner.uplink_breaker = breaker
            runner.replicator.breaker = breaker
            supervisor.attach_breaker("cloud.uplink", breaker)

        # Fog node: a roll-up view over its constituent services plus link
        # reachability — a crashed node's restarted daemons look healthy
        # from inside, so the probe also checks that the node's incident
        # links are up (the signal that lets degraded-mode autonomy engage
        # even when there is no uplink traffic for the breaker to fail on).
        if runner.fog is not None:

            def fog_reachable(now, r=runner, addr=runner.fog.mqtt_address):
                return all(
                    link.state is not LinkState.DOWN
                    for (src, dst), link in r.net.links.items()
                    if addr in (src, dst)
                )

            supervisor.watch(
                "fog.node",
                probe=lambda now, r=runner, reachable=fog_reachable: (
                    (r.replicator is None or r.replicator.running)
                    and now - r.fog.mqtt.last_sweep_at
                    <= 3.0 * r.fog.mqtt._sweep_interval_s
                    and reachable(now)
                ),
            )

        # Irrigation scheduler: probe catches a dead loop, the per-cycle
        # heartbeat catches a live-but-wedged one.
        if runner.scheduler is not None:
            scheduler_watch = supervisor.watch(
                "irrigation.scheduler",
                probe=lambda now, s=runner.scheduler: (
                    s._process is not None and s._process.alive
                ),
                restart=runner.scheduler.start,
                heartbeat_timeout_s=2.5 * runner.scheduler.cycle_interval_s,
            )
            runner.scheduler.heartbeat = scheduler_watch.beat
            # Degraded-mode autonomy needs both a scheduler to steer and a
            # breaker to listen to.
            if runner.uplink_breaker is not None:
                degraded = DegradedModePolicy(
                    sim, runner.scheduler, runner.context, runner.config.farm,
                    degraded_max_data_age_s=cfg.degraded_max_data_age_s,
                    journal_limit=cfg.journal_limit,
                )
                runner.degraded_mode = degraded
                runner.scheduler.on_decision.append(degraded.record_decision)
                runner.uplink_breaker.on_state_change.append(degraded.on_breaker_state)
                if runner.fog is not None:
                    degraded.isolation_services.add("fog.node")
                    supervisor.on_state_change.append(degraded.on_service_state)

        supervisor.start()


def default_stages() -> List[BuildStage]:
    """The standard pilot assembly plan, in registration order.

    The order is load-bearing (see the module docstring): it must remain a
    valid topological order of each stage's declared dependencies, and it
    reproduces the construction order of the pre-refactor monolith.
    """
    return [
        SecurityLayerStage(),
        FogCloudStage(),
        MessagingStage(),
        PhysicsStage(),
        DeviceNetworkStage(),
        DecisionLayerStage(),
        SecurityWiringStage(),
    ]
