"""Run-level checkpoint/restore built on kernel snapshots + factory replay.

A live :class:`~repro.core.pilot.PilotRunner` cannot be pickled: its
scheduled callbacks close over lambdas, its processes are generators and
some pilot configs carry closures (the canal/source-mix ``supply_gate``).
So a checkpoint does not try to serialize the runner.  It serializes two
things that *are* picklable:

* a :class:`RunRecipe` — how to build an identical runner from scratch
  (a pilot name plus resolved builder kwargs, or a picklable
  :class:`~repro.core.pilot.PilotConfig`), and
* a replay-mode :class:`~repro.simkernel.snapshot.KernelSnapshot` — the
  deterministic-state *fingerprint* at the checkpoint barrier (clock,
  event-queue signature incl. the tie-break counter, every RNG stream's
  ``getstate`` tuple, trace counters) plus run accounting.

Restore rebuilds the runner from the recipe (``rebuilding=True`` flows
through the platform runtime's rebuild hooks), replays deterministically
from time zero to the barrier with
:meth:`~repro.simkernel.simulator.Simulator.run_until`, then verifies the
rebuilt kernel's fingerprint against the snapshot.  Because the whole
stack is deterministic by construction, the replay reconverges exactly —
and if the code changed between snapshot and restore, the fingerprint
check fails loudly (:class:`CheckpointStateMismatch`) instead of silently
producing a different run.  The guarantee the tests pin down:
``restore(snapshot(t))`` then run-to-end is byte-identical to the
uninterrupted run.
"""

import dataclasses
import pickle
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, Optional

from repro.core.pilot import PilotConfig, PilotRunner
from repro.simkernel.errors import ReproError
from repro.simkernel.snapshot import KernelSnapshot, compare_fingerprints
from repro.store.segment import SEALED_MAGIC, CorruptBlobError, read_sealed, write_sealed

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointStateMismatch",
    "RestoredRun",
    "RunCheckpoint",
    "RunRecipe",
    "load_checkpoint",
    "restore",
    "restore_and_resume",
    "resume",
    "run_with_checkpoints",
    "save_checkpoint",
    "snapshot",
]

#: Checkpoint file-format version; bump when the pickled shape changes.
CHECKPOINT_VERSION = 1


class CheckpointError(ReproError):
    """A checkpoint could not be written, read or rebuilt."""


class CheckpointStateMismatch(CheckpointError):
    """The factory replay did not reconverge on the snapshotted state.

    Almost always means the code (or an input the recipe does not
    capture) changed between snapshot and restore.
    """


@dataclass
class RunRecipe:
    """A picklable description of how to rebuild one runner from scratch.

    Exactly one mode applies: ``pilot`` named (rebuild through
    ``PILOT_BUILDERS[pilot](**builder_kwargs)``) or ``config`` set
    (rebuild as ``PilotRunner(config)`` — only for configs that pickle,
    i.e. without ``supply_gate`` closures).
    """

    pilot: Optional[str] = None
    builder_kwargs: Dict[str, Any] = dataclass_field(default_factory=dict)
    config: Optional[PilotConfig] = None

    def build(self, rebuilding: bool = True) -> PilotRunner:
        if self.config is not None:
            return PilotRunner(self.config, rebuilding=rebuilding)
        from repro.core.pilots import PILOT_BUILDERS

        builder = PILOT_BUILDERS.get(self.pilot)
        if builder is None:
            raise CheckpointError(
                f"unknown pilot {self.pilot!r} in checkpoint recipe; "
                f"choose from {sorted(PILOT_BUILDERS)}"
            )
        return builder(rebuilding=rebuilding, **self.builder_kwargs)


@dataclass
class RunCheckpoint:
    """One run frozen at a barrier: the recipe plus the kernel fingerprint."""

    version: int
    recipe: RunRecipe
    #: Simulation time of the checkpoint barrier.
    barrier_s: float
    #: Simulation time the run is headed for (``sim.run(until=horizon_s)``).
    horizon_s: float
    #: Replay-mode kernel snapshot (no events, no trace records).
    kernel: KernelSnapshot


def snapshot(
    runner: PilotRunner,
    recipe: Optional[RunRecipe] = None,
    horizon_s: Optional[float] = None,
) -> RunCheckpoint:
    """Freeze ``runner`` at its current (paused) simulation time.

    Call between :meth:`~repro.core.pilot.PilotRunner.run_until` segments;
    the kernel must not be mid-event.
    """
    if recipe is None:
        recipe = RunRecipe(config=runner.config)
    if horizon_s is None:
        horizon_s = runner.season_end_s
    return RunCheckpoint(
        version=CHECKPOINT_VERSION,
        recipe=recipe,
        barrier_s=runner.sim.now,
        horizon_s=horizon_s,
        kernel=runner.sim.snapshot(include_events=False, include_trace=False),
    )


def save_checkpoint(checkpoint: RunCheckpoint, path: str) -> None:
    """Write ``checkpoint`` to ``path`` as a sealed, checksummed blob.

    The full crash-safe barrier (temp file, flush, fsync, atomic rename,
    directory fsync — :func:`repro.store.segment.write_sealed`): a crash
    at any point leaves the previous checkpoint intact, and a torn write
    is *detected* at load by the blob's CRC instead of surfacing as a
    pickle of garbage.
    """
    try:
        payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint does not pickle ({exc!r}); pilots whose config "
            "carries closures (supply_gate) need a named-pilot RunRecipe"
        ) from exc
    write_sealed(path, payload)


def load_checkpoint(path: str) -> RunCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Sealed blobs are checksum-verified: a file torn mid-write is rejected
    loudly (:class:`CheckpointError`), never unpickled.  Pre-seal files
    (raw pickle, no :data:`SEALED_MAGIC`) still load for back-compat.
    """
    with open(path, "rb") as fh:
        head = fh.read(len(SEALED_MAGIC))
    if head == SEALED_MAGIC:
        try:
            payload = read_sealed(path)
        except CorruptBlobError as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is torn or corrupt; refusing to "
                f"restore from it ({exc})"
            ) from exc
        checkpoint = pickle.loads(payload)
    else:
        with open(path, "rb") as fh:
            checkpoint = pickle.load(fh)
    if not isinstance(checkpoint, RunCheckpoint):
        raise CheckpointError(f"{path!r} does not contain a RunCheckpoint")
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {checkpoint.version} is not supported "
            f"(this build writes version {CHECKPOINT_VERSION})"
        )
    return checkpoint


@dataclass
class RestoredRun:
    """A rebuilt runner, verified and positioned at the checkpoint barrier."""

    runner: PilotRunner
    checkpoint: RunCheckpoint
    #: Wall seconds the replay itself took (not part of run accounting).
    replay_wall_s: float


def restore(source: Any) -> RestoredRun:
    """Rebuild a run from a checkpoint (path or :class:`RunCheckpoint`).

    Replays from time zero to the barrier and verifies the kernel
    fingerprint; raises :class:`CheckpointStateMismatch` when the replay
    diverged from the snapshotted state.  On success the runner's
    ``wall_time_s`` is overlaid with the original run's accumulated wall
    time, so throughput accounting survives the process boundary.
    """
    checkpoint = load_checkpoint(source) if isinstance(source, str) else source
    if not isinstance(checkpoint, RunCheckpoint):
        raise CheckpointError(f"cannot restore from {type(checkpoint).__name__}")
    runner = checkpoint.recipe.build(rebuilding=True)
    runner.start_season()
    runner.sim.run_until(checkpoint.barrier_s)
    replay_wall_s = runner.sim.wall_time_s
    problems = compare_fingerprints(
        checkpoint.kernel.fingerprint(), runner.sim.fingerprint()
    )
    if problems:
        raise CheckpointStateMismatch(
            "replay did not reconverge on the checkpointed state "
            "(code changed between snapshot and restore?): "
            + "; ".join(problems)
        )
    # The replay's own wall cost is diagnostic, not run accounting: the
    # restored run reports the original run's wall time up to the barrier.
    runner.sim.wall_time_s = checkpoint.kernel.wall_time_s
    return RestoredRun(runner=runner, checkpoint=checkpoint,
                       replay_wall_s=replay_wall_s)


def resume(restored: RestoredRun):
    """Run a restored run from its barrier to its horizon; return the report."""
    restored.runner.sim.run(until=restored.checkpoint.horizon_s)
    return restored.runner.report()


def restore_and_resume(path: str) -> Dict[str, Any]:
    """Restore from ``path``, run to the horizon, return the report as a dict.

    Module-level (hence importable from a fresh process) — the
    bit-identity tests run this in a spawned interpreter to prove the
    checkpoint carries everything the run needs.
    """
    report = resume(restore(path))
    return dataclasses.asdict(report)


def run_with_checkpoints(
    runner: PilotRunner,
    recipe: RunRecipe,
    horizon_s: float,
    path: str,
    every_s: Optional[float] = None,
):
    """Drive ``runner`` to ``horizon_s``, checkpointing to ``path`` en route.

    Barriers sit at multiples of ``every_s`` (strictly inside the run);
    without ``every_s`` a single checkpoint is taken at ``horizon_s / 2``.
    Each write overwrites ``path`` — the file always holds the latest
    barrier, which is what a crash-resume wants.  Returns the report.
    """
    if every_s is not None and every_s <= 0:
        raise CheckpointError(f"checkpoint interval must be positive, got {every_s!r}")
    if every_s is None:
        barriers = [horizon_s / 2.0]
    else:
        barriers = []
        t = every_s
        while t < horizon_s:
            barriers.append(t)
            t += every_s
    runner.start_season()
    for barrier in barriers:
        runner.sim.run_until(barrier)
        if runner.sim.stopped_reason is not None:
            break
        save_checkpoint(
            snapshot(runner, recipe=recipe, horizon_s=horizon_s), path
        )
    runner.sim.run(until=horizon_s)
    return runner.report()
