"""Deployment configurations.

The paper: "The SWAMP architecture may be implemented in a range of
deployment configurations involving the use of smart algorithms and
analytics in the cloud, fog-based smart decisions located on the farm
premises and possibly mobile fog nodes acting in the field."

=============  =================================================================
CLOUD_ONLY     Devices reach the *cloud* MQTT broker through the farm gateway
               and the rural WAN; context broker, IoT agent and scheduler all
               run in the cloud.  An Internet partition severs the whole loop.
FOG            A farm fog node hosts broker, context and scheduler locally;
               devices stay on farm radio.  The replicator store-and-forwards
               context to the cloud; a partition costs only cloud visibility.
MOBILE_FOG     FOG plus mobile nodes in the field (survey drone with local
               NDVI analytics) — the drone keeps collecting during partitions.
=============  =================================================================
"""

import enum


class DeploymentKind(enum.Enum):
    CLOUD_ONLY = "cloud-only"
    FOG = "fog"
    MOBILE_FOG = "mobile-fog"

    @property
    def has_fog(self) -> bool:
        return self in (DeploymentKind.FOG, DeploymentKind.MOBILE_FOG)

    @property
    def has_drone(self) -> bool:
        return self is DeploymentKind.MOBILE_FOG
