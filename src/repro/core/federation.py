"""Multi-tenant cloud federation.

The paper's governance requirements only bite when several farms share the
cloud tier: "it is important to keep data apart from farms in our pilots",
"each owner controls their data and decides the access control", and
anonymization exists so data *can* still be shared regionally.  This
module provides that shared tier:

* :class:`FederatedCloud` — one cloud context broker receiving each farm's
  replica stream (the same store-and-forward protocol the fog tier uses),
  with a per-principal, PEP-guarded query API;
* :class:`GuardedContextApi` — token-in, entities-out; every read is an
  authorization decision on the *entity's* farm (entity ids embed their
  farm: ``urn:<Type>:<farm>:...``), so cross-farm reads fail closed and
  are audited;
* :class:`RegionalReleaseService` — the sanctioned sharing path: builds a
  k-anonymized regional dataset from the cloud's view, so water
  authorities and researchers get statistics, not farms.
"""

import re
from typing import Any, Dict, List, Optional

from repro.context.broker import ContextBroker
from repro.fog.replication import CloudSyncTarget
from repro.network.topology import Network
from repro.security.anonymization import Anonymizer
from repro.security.auth.identity import IdentityManager
from repro.security.auth.oauth import OAuthServer
from repro.security.auth.pdp import Policy, PolicyDecisionPoint
from repro.security.auth.pep import PepProxy
from repro.simkernel.simulator import Simulator

_FARM_IN_URN = re.compile(r"^urn:[A-Za-z0-9_\-]+:([A-Za-z0-9_\-]+)")


def farm_of_entity(entity_id: str) -> Optional[str]:
    """Extract the owning farm from a platform entity id, if present."""
    match = _FARM_IN_URN.match(entity_id)
    return match.group(1) if match else None


class GuardedContextApi:
    """PEP-guarded read access to a context broker."""

    def __init__(self, context: ContextBroker, pep: PepProxy) -> None:
        self.context = context
        self.pep = pep
        self.reads_allowed = 0
        self.reads_denied = 0

    def get_entity(self, access_token: str, entity_id: str):
        """The entity, or None when unauthorized (denial audited)."""
        if not self.pep.check(access_token, "read", entity_id):
            self.reads_denied += 1
            return None
        self.reads_allowed += 1
        if not self.context.has_entity(entity_id):
            return None
        return self.context.get_entity(entity_id)

    def query(
        self,
        access_token: str,
        entity_type: Optional[str] = None,
        id_pattern: Optional[str] = None,
        filters: Optional[List[str]] = None,
    ):
        """Filtered listing, post-filtered by per-entity authorization.

        Unauthorized entities are silently omitted (and audited), so a
        tenant cannot even learn of other farms' entity ids.
        """
        results = []
        for entity in self.context.query(entity_type, id_pattern, filters):
            if self.pep.check(access_token, "read", entity.entity_id):
                self.reads_allowed += 1
                results.append(entity)
            else:
                self.reads_denied += 1
        return results


class FederatedCloud:
    """Shared cloud tier for many farms."""

    def __init__(self, sim: Simulator, network: Network, name: str = "cloud") -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.context = ContextBroker(sim, name=f"{name}:context")
        self.identity = IdentityManager(sim.rng.stream(f"{name}:idm"))
        self.oauth = OAuthServer(sim, self.identity, sim.rng.stream(f"{name}:oauth"),
                                 access_token_ttl_s=14 * 86400.0)
        self.pdp = PolicyDecisionPoint()
        # Tenants read only entities of their own farm; regional analysts
        # hold the 'regional-analyst' role and go through the release
        # service, not raw reads.
        self.pdp.add_policy(
            Policy("tenant-own-farm", "permit", {"read"},
                   r"^urn:[A-Za-z0-9_\-]+:", same_farm=True)
        )
        self.pdp.add_policy(
            Policy("platform-admin", "permit", {"read", "admin"}, r".*",
                   roles={"platform-admin"})
        )
        self.pep = PepProxy(sim, self.oauth, self.pdp)
        self.api = GuardedContextApi(self.context, self.pep)
        self.sync_targets: Dict[str, CloudSyncTarget] = {}

    # -- tenancy -----------------------------------------------------------

    def register_farm(self, farm: str) -> CloudSyncTarget:
        """Open a replication endpoint for one farm's fog tier."""
        if farm in self.sync_targets:
            raise ValueError(f"farm {farm!r} already registered")
        target = CloudSyncTarget(
            self.sim, self.network, f"{self.name}:sync:{farm}", self.context
        )
        self.sync_targets[farm] = target
        return target

    def register_user(self, user: str, password: str, farm: str,
                      roles=("farmer",)) -> str:
        """Register a tenant user; returns a bearer token."""
        self.identity.register(user, password, farm=farm, roles=set(roles))
        return self.oauth.password_grant(user, password).access_token

    def register_analyst(self, user: str, password: str) -> str:
        self.identity.register(user, password, farm=None, roles={"regional-analyst"})
        return self.oauth.password_grant(user, password).access_token


class RegionalReleaseService:
    """k-anonymized regional statistics from the federated cloud."""

    def __init__(
        self,
        cloud: FederatedCloud,
        secret_salt: bytes,
        k: int = 2,
        quasi_identifiers=("lat", "lon", "area_ha", "crop"),
    ) -> None:
        self.cloud = cloud
        self.k = k
        self.quasi_identifiers = list(quasi_identifiers)
        self.anonymizer = Anonymizer(
            secret_salt=secret_salt,
            quasi_identifiers=self.quasi_identifiers,
        )
        self.releases = 0

    def _collect_records(self, entity_type: str, value_attrs: List[str]) -> List[Dict[str, Any]]:
        records = []
        for entity in self.cloud.context.query(entity_type=entity_type):
            farm = farm_of_entity(entity.entity_id)
            record: Dict[str, Any] = {"farm": farm or entity.entity_id}
            for name in self.quasi_identifiers + value_attrs:
                value = entity.get(name)
                if value is not None:
                    record[name] = value
            records.append(record)
        return records

    def release(self, access_token: str, entity_type: str,
                value_attrs: List[str]) -> Optional[List[Dict[str, Any]]]:
        """An anonymized release, or None when the caller lacks the role."""
        token = self.cloud.oauth.introspect(access_token)
        if token is None:
            return None
        principal = self.cloud.identity.get(token.principal_id)
        if principal is None or "regional-analyst" not in principal.roles:
            return None
        self.releases += 1
        records = self._collect_records(entity_type, value_attrs)
        return self.anonymizer.anonymize(records, k=self.k)
