"""PilotRunner: one configured farm running a full season end-to-end.

This is the integration point of the whole reproduction: physics, devices,
radio, MQTT, IoT agent, context broker, fog/cloud tiers, scheduler and the
security stack are assembled per :class:`PilotConfig` and driven through a
growing season.  All experiments (benchmarks/) run through this class so
that every number reported comes from the full pipeline, not from a
shortcut around it.
"""

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional

from repro.agents.iot_agent import DeviceProvision, IoTAgent
from repro.core.deployment import DeploymentKind
from repro.core.security_profile import SecurityConfig, SecurityStack
from repro.devices.actuators import CenterPivot, Pump, Valve
from repro.devices.base import DeviceConfig
from repro.devices.drone import Drone
from repro.devices.sensors import SoilMoistureProbe, WaterFlowMeter, WeatherStation
from repro.fog.node import CloudNode, FogNode
from repro.fog.replication import CloudSyncTarget, Replicator
from repro.irrigation.policy import SoilMoisturePolicy
from repro.irrigation.scheduler import PlatformScheduler
from repro.network.radio import ETHERNET_LAN, LORA_FIELD, WAN_BACKHAUL, WIFI_FARM
from repro.network.topology import Network
from repro.physics.crop import Crop
from repro.physics.field import Field
from repro.physics.ndvi import NdviTracker
from repro.physics.soil import LOAM, SoilProperties
from repro.physics.weather import ClimateProfile, WeatherGenerator
from repro.simkernel.clock import DAY, HOUR
from repro.simkernel.simulator import Simulator


@dataclass
class PilotConfig:
    name: str
    farm: str
    climate: ClimateProfile
    crop: Crop
    soil: SoilProperties = LOAM
    rows: int = 4
    cols: int = 4
    zone_area_ha: float = 1.0
    spatial_cv: float = 0.2
    season_days: Optional[int] = None  # defaults to the crop season
    start_day_of_year: int = 1
    deployment: DeploymentKind = DeploymentKind.FOG
    irrigation_kind: str = "valves"  # "valves" | "pivot" | "none"
    scheduler_kind: str = "smart"  # "smart" | "fixed" | "none"
    policy: Optional[SoilMoisturePolicy] = None
    fixed_interval_days: int = 3
    fixed_depth_mm: float = 25.0
    probe_coverage: float = 1.0
    probe_interval_s: float = 1800.0
    valve_rate_mm_h: float = 8.0
    pivot_rate_mm_h: float = 10.0
    pump_head_m: float = 45.0
    initial_theta: Optional[float] = None
    drone_survey_interval_days: int = 7
    forecast_quality: float = 1.0  # 1 = perfect rain forecast, 0 = none
    uniform_pivot: bool = False  # True = no VRI: worst-zone depth everywhere
    security: SecurityConfig = dataclass_field(default_factory=SecurityConfig)
    supply_gate: Optional[Callable[[float], float]] = None
    seed: int = 0

    @property
    def effective_season_days(self) -> int:
        return self.season_days if self.season_days is not None else self.crop.season_days


@dataclass
class PilotReport:
    name: str
    season_days: int
    irrigation_m3: float
    irrigation_mm_per_ha: float
    rain_mm: float
    pump_kwh: float
    pivot_move_kwh: float
    relative_yield: float
    yield_t: float
    decision_cycles: int
    decisions: int
    commands_sent: int
    skipped_no_data: int
    skipped_stale: int
    measures_processed: int
    measures_dropped_unprovisioned: int
    broker_publishes_in: int
    broker_denied: int
    devices_dead: int
    replicator_synced: int
    replicator_dropped: int
    alerts: int
    quarantined_devices: int

    @property
    def total_energy_kwh(self) -> float:
        return self.pump_kwh + self.pivot_move_kwh


class PilotRunner:
    def __init__(self, config: PilotConfig) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.net = Network(self.sim, name=config.name)
        self.security = SecurityStack(self.sim, config.farm, config.security)
        self._build_tiers()
        self._build_field_and_weather()
        self._build_devices()
        self._provision_devices()
        self._build_scheduler()
        self.security.wire_detection(self.context, self.agent)
        self.security.wire_command_tap(self.net, self.broker_address)
        self.season_day = 0
        self._daily_process = None
        self._report_cache: Optional[PilotReport] = None

    # -- construction -----------------------------------------------------------

    def _build_tiers(self) -> None:
        config = self.config
        hooks = self.security.broker_hooks()
        self.cloud = CloudNode(
            self.sim, self.net, "cloud",
            with_mqtt=not config.deployment.has_fog,
            authenticator=hooks["authenticator"], authorizer=hooks["authorizer"],
        )
        self.fog: Optional[FogNode] = None
        self.replicator: Optional[Replicator] = None
        if config.deployment.has_fog:
            self.fog = FogNode(
                self.sim, self.net, "fog", config.farm,
                authenticator=hooks["authenticator"], authorizer=hooks["authorizer"],
            )
            self.broker_address = self.fog.mqtt_address
            self.context = self.fog.context
            self.history = self.fog.history
            self.agent = self.fog.agent
            self.net.connect("fog:iota", self.fog.mqtt_address, ETHERNET_LAN)
            # Store-and-forward sync to the cloud over the rural WAN.
            CloudSyncTarget(self.sim, self.net, "cloud:sync", self.cloud.context)
            self.replicator = Replicator(
                self.sim, self.net, "fog:sync", self.fog.context, "cloud:sync",
                sync_interval_s=60.0,
            )
            self.net.connect("fog:sync", "cloud:sync", WAN_BACKHAUL)
            self._wan_pair = ("fog:sync", "cloud:sync")
            self._device_uplink = self.broker_address
            self._device_radio = LORA_FIELD
        else:
            self.broker_address = self.cloud.mqtt_address
            self.context = self.cloud.context
            self.history = self.cloud.history
            self.agent = IoTAgent(
                self.sim, self.net, "cloud:iota", self.broker_address,
                self.cloud.context, config.farm,
            )
            self.net.connect("cloud:iota", self.broker_address, ETHERNET_LAN)
            # Farm gateway: field radio on one side, rural WAN on the other.
            from repro.network.node import NetworkNode

            self.gateway = self.net.add_node(NetworkNode(f"{config.farm}:gw"))
            self.net.connect(f"{config.farm}:gw", self.broker_address, WAN_BACKHAUL)
            self._wan_pair = (f"{config.farm}:gw", self.broker_address)
            self._device_uplink = f"{config.farm}:gw"
            self._device_radio = LORA_FIELD
        self.security.wire_agent(self.agent)
        self.agent.start()

    def _build_field_and_weather(self) -> None:
        config = self.config
        self.field = Field(
            config.farm, config.rows, config.cols, config.soil, config.crop,
            self.sim.rng.stream("field"),
            zone_area_ha=config.zone_area_ha,
            spatial_cv=config.spatial_cv,
            initial_theta=config.initial_theta,
        )
        generator = WeatherGenerator(
            config.climate, self.sim.rng.stream("weather"),
            start_day_of_year=config.start_day_of_year,
        )
        self.weather = generator.generate(config.effective_season_days + 1)
        self.ndvi_trackers: Dict[str, NdviTracker] = {
            zone.zone_id: NdviTracker(zone) for zone in self.field
        }
        self._forecast_rng = self.sim.rng.stream("forecast")

    def _attach_device(self, device) -> None:
        """Connect a device's radio and register its credentials."""
        self.net.connect(device.client.address, self._device_uplink, self._device_radio)
        self.security.enroll_device(device, device_key=f"key-{device.config.device_id}")
        device.start()

    def _build_devices(self) -> None:
        config = self.config
        farm = config.farm
        self.probes: Dict[str, SoilMoistureProbe] = {}
        self.valves: Dict[str, Valve] = {}
        self.pivot: Optional[CenterPivot] = None
        self.drone: Optional[Drone] = None

        # Shared irrigation plant.
        self.pump = Pump(
            self.sim, self.net, DeviceConfig(f"{farm}-pump", farm, "Pump", report_interval_s=3600),
            self.broker_address, head_m=config.pump_head_m,
        )
        self._attach_device(self.pump)
        self.flow_meter = WaterFlowMeter(
            self.sim, self.net,
            DeviceConfig(f"{farm}-flow", farm, "FlowMeter", report_interval_s=3600),
            self.broker_address,
        )
        self._attach_device(self.flow_meter)

        self.weather_station = WeatherStation(
            self.sim, self.net,
            DeviceConfig(f"{farm}-ws", farm, "WeatherStation", report_interval_s=3600),
            self.broker_address,
        )
        self._attach_device(self.weather_station)

        # Probes on the first `coverage` fraction of zones (deterministic).
        zones = list(self.field)
        probe_count = max(1, round(config.probe_coverage * len(zones)))
        for zone in zones[:probe_count]:
            device_id = f"{farm}-probe-{zone.row}-{zone.col}"
            probe = SoilMoistureProbe(
                self.sim, self.net,
                DeviceConfig(device_id, farm, "SoilProbe",
                             report_interval_s=config.probe_interval_s),
                self.broker_address, zone=zone,
            )
            self._attach_device(probe)
            self.probes[zone.zone_id] = probe

        if config.irrigation_kind == "valves":
            for zone in zones:
                device_id = f"{farm}-valve-{zone.row}-{zone.col}"
                valve = Valve(
                    self.sim, self.net,
                    DeviceConfig(device_id, farm, "Valve", report_interval_s=7200),
                    self.broker_address, zone=zone,
                    rate_mm_h=config.valve_rate_mm_h,
                    pump=self.pump, flow_meter=self.flow_meter,
                )
                self._attach_device(valve)
                self.valves[zone.zone_id] = valve
        elif config.irrigation_kind == "pivot":
            self.pivot = CenterPivot(
                self.sim, self.net,
                DeviceConfig(f"{farm}-pivot", farm, "CenterPivot", report_interval_s=7200),
                self.broker_address, zones=zones,
                max_application_rate_mm_h=config.pivot_rate_mm_h, pump=self.pump,
            )
            self._attach_device(self.pivot)

        if config.deployment.has_drone:
            self.drone = Drone(
                self.sim, self.net,
                DeviceConfig(f"{farm}-drone", farm, "Drone", report_interval_s=7200,
                             battery_capacity_j=500_000.0),
                self.broker_address, field=self.field, trackers=self.ndvi_trackers,
            )
            self._attach_device(self.drone)

    def _provision_devices(self) -> None:
        farm = self.config.farm
        for zone_id, probe in self.probes.items():
            zone = self.field.zone_by_id(zone_id)
            self.agent.provision(
                DeviceProvision(
                    probe.config.device_id, "", self.zone_entity_id(zone), "AgriParcel"
                )
            )
        for zone_id, valve in self.valves.items():
            self.agent.provision(
                DeviceProvision(
                    valve.config.device_id, "",
                    f"urn:Valve:{valve.config.device_id}", "Valve",
                    commands=("open", "close"),
                )
            )
        if self.pivot is not None:
            self.agent.provision(
                DeviceProvision(
                    self.pivot.config.device_id, "",
                    f"urn:CenterPivot:{self.pivot.config.device_id}", "CenterPivot",
                    commands=("start_pass", "stop"),
                )
            )
        self.agent.provision(
            DeviceProvision(self.pump.config.device_id, "",
                            f"urn:Pump:{farm}", "Pump", commands=("start", "stop"))
        )
        self.agent.provision(
            DeviceProvision(self.flow_meter.config.device_id, "",
                            f"urn:FlowMeter:{farm}", "FlowMeter")
        )
        self.agent.provision(
            DeviceProvision(self.weather_station.config.device_id, "",
                            f"urn:WeatherObserved:{farm}", "WeatherObserved")
        )
        if self.drone is not None:
            self.agent.provision(
                DeviceProvision(self.drone.config.device_id, "",
                                f"urn:Drone:{farm}", "Drone", commands=("survey",))
            )

    def zone_entity_id(self, zone) -> str:
        return f"urn:AgriParcel:{self.config.farm}:{zone.row}-{zone.col}"

    def _build_scheduler(self) -> None:
        config = self.config
        self.scheduler: Optional[PlatformScheduler] = None
        if config.scheduler_kind == "none" or config.irrigation_kind == "none":
            return
        if config.scheduler_kind == "fixed":
            self.sim.spawn(self._fixed_schedule_loop(), "fixed-scheduler")
            return
        self.scheduler = PlatformScheduler(
            self.sim, self.context, self.agent,
            policy=config.policy or SoilMoisturePolicy(),
            forecast_provider=self._forecast_rain,
            supply_gate=config.supply_gate,
            uniform_pivot=config.uniform_pivot,
        )
        if config.irrigation_kind == "valves":
            for zone_id, probe in self.probes.items():
                zone = self.field.zone_by_id(zone_id)
                valve = self.valves.get(zone_id)
                if valve is None:
                    continue
                self.scheduler.bind_valve(
                    self.zone_entity_id(zone), valve.config.device_id,
                    theta_fc=zone.water_balance.soil.theta_fc,
                    theta_wp=zone.water_balance.soil.theta_wp,
                    root_depth_m=zone.crop.root_depth_at(0),
                    depletion_fraction_p=zone.crop.stages[0].depletion_fraction_p,
                    area_ha=zone.area_ha,
                )
        elif config.irrigation_kind == "pivot":
            zone_bindings = []
            for zone_id, probe in self.probes.items():
                zone = self.field.zone_by_id(zone_id)
                zone_bindings.append(
                    {
                        "entity_id": self.zone_entity_id(zone),
                        "zone_id": zone.zone_id,
                        "theta_fc": zone.water_balance.soil.theta_fc,
                        "theta_wp": zone.water_balance.soil.theta_wp,
                        "root_depth_m": zone.crop.root_depth_at(0),
                        "p": zone.crop.stages[0].depletion_fraction_p,
                        "area_ha": zone.area_ha,
                    }
                )
            self.scheduler.bind_pivot(self.pivot.config.device_id, zone_bindings)
        self.scheduler.start()

    # -- forecast -----------------------------------------------------------

    def _forecast_rain(self) -> float:
        """Forecast of today's rain (applied at the coming midnight)."""
        if self.season_day >= len(self.weather):
            return 0.0
        actual = self.weather[self.season_day].rain_mm
        quality = self.config.forecast_quality
        if quality >= 1.0:
            return actual
        noise = self._forecast_rng.bounded_gauss(1.0, 1.0 - quality, 0.0, 2.0)
        return actual * quality * noise

    # -- fixed-calendar baseline ----------------------------------------------------

    def _fixed_schedule_loop(self):
        config = self.config
        yield 6 * HOUR
        while True:
            if self.season_day % config.fixed_interval_days == 0:
                if config.irrigation_kind == "valves":
                    for valve in self.valves.values():
                        self.agent.send_command(
                            valve.config.device_id,
                            {"cmd": "open", "depth_mm": config.fixed_depth_mm},
                        )
                elif self.pivot is not None:
                    self.agent.send_command(
                        self.pivot.config.device_id,
                        {"cmd": "start_pass", "depth_mm": config.fixed_depth_mm},
                    )
            yield DAY

    # -- season driver -----------------------------------------------------------

    def _daily_loop(self):
        config = self.config
        survey_every = config.drone_survey_interval_days
        while self.season_day < config.effective_season_days:
            today = self.weather[self.season_day]
            self.weather_station.today = today
            # Update scheduler bindings with the crop's current root zone.
            self._refresh_bindings()
            if (
                self.drone is not None
                and survey_every > 0
                and self.season_day % survey_every == 0
            ):
                self.sim.schedule(10 * HOUR, self.drone.start_survey, label="survey")
            yield DAY
            # Midnight: apply the day's weather to the soil/crop.
            self.field.advance_day(today.et0_mm, today.rain_mm)
            for zone in self.field:
                self.ndvi_trackers[zone.zone_id].record_day(
                    zone.water_balance.stress_coefficient_ks
                )
            self.season_day += 1

    def _refresh_bindings(self) -> None:
        if self.scheduler is None:
            return
        day = self.season_day
        crop = self.config.crop
        root = crop.root_depth_at(day)
        p = crop.stage_at(min(day, crop.season_days - 1)).depletion_fraction_p
        for binding in self.scheduler._valve_bindings:
            binding["root_depth_m"] = root
            binding["p"] = p
        for pivot_binding in self.scheduler._pivot_bindings:
            for binding in pivot_binding["zones"]:
                binding["root_depth_m"] = root
                binding["p"] = p

    # -- fault injection -----------------------------------------------------------

    def schedule_wan_partition(self, start_s: float, duration_s: float) -> None:
        """Cut the farm↔cloud WAN for ``duration_s`` (E9's fault)."""
        a, b = self._wan_pair
        self.sim.schedule_at(start_s, lambda: self.net.partition(a, b), label="partition")
        self.sim.schedule_at(start_s + duration_s, lambda: self.net.heal(a, b), label="heal")

    # -- run & report -----------------------------------------------------------

    def run_season(self) -> PilotReport:
        self._daily_process = self.sim.spawn(self._daily_loop(), "season")
        self.sim.run(until=self.config.effective_season_days * DAY + HOUR)
        return self.report()

    def run_days(self, days: float) -> None:
        if self._daily_process is None:
            self._daily_process = self.sim.spawn(self._daily_loop(), "season")
        self.sim.run(until=self.sim.now + days * DAY)

    def report(self) -> PilotReport:
        config = self.config
        scheduler_stats = self.scheduler.stats if self.scheduler else None
        broker = self.fog.mqtt if self.fog is not None else self.cloud.mqtt
        devices = [
            self.pump, self.flow_meter, self.weather_station,
            *self.probes.values(), *self.valves.values(),
        ]
        if self.pivot is not None:
            devices.append(self.pivot)
        if self.drone is not None:
            devices.append(self.drone)
        quarantined = len(self.security.alert_manager.quarantined) \
            if self.security.alert_manager else 0
        alerts = len(self.security.alert_manager.alerts) \
            if self.security.alert_manager else 0
        return PilotReport(
            name=config.name,
            season_days=self.season_day,
            irrigation_m3=self.field.total_irrigation_m3(),
            irrigation_mm_per_ha=(
                self.field.total_irrigation_m3() / (self.field.area_ha * 10.0)
                if self.field.area_ha else 0.0
            ),
            rain_mm=sum(d.rain_mm for d in self.weather[: self.season_day]),
            pump_kwh=self.pump.total_kwh,
            pivot_move_kwh=self.pivot.move_energy_kwh if self.pivot else 0.0,
            relative_yield=self.field.mean_relative_yield(),
            yield_t=self.field.total_yield_t(),
            decision_cycles=scheduler_stats.cycles if scheduler_stats else 0,
            decisions=scheduler_stats.decisions if scheduler_stats else 0,
            commands_sent=scheduler_stats.commands_sent if scheduler_stats else 0,
            skipped_no_data=scheduler_stats.skipped_no_data if scheduler_stats else 0,
            skipped_stale=scheduler_stats.skipped_stale if scheduler_stats else 0,
            measures_processed=self.agent.stats.measures_processed,
            measures_dropped_unprovisioned=self.agent.stats.measures_dropped_unprovisioned,
            broker_publishes_in=broker.stats.publishes_in if broker else 0,
            broker_denied=(broker.stats.denied_publish + broker.stats.denied_subscribe)
            if broker else 0,
            devices_dead=sum(1 for d in devices if d.dead),
            replicator_synced=self.replicator.updates_synced if self.replicator else 0,
            replicator_dropped=self.replicator.updates_dropped_overflow if self.replicator else 0,
            alerts=alerts,
            quarantined_devices=quarantined,
        )
