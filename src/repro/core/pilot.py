"""PilotRunner: one configured farm running a full season end-to-end.

This is the integration point of the whole reproduction: physics, devices,
radio, MQTT, IoT agent, context broker, fog/cloud tiers, scheduler and the
security stack are assembled per :class:`PilotConfig` and driven through a
growing season.  All experiments (benchmarks/) run through this class so
that every number reported comes from the full pipeline, not from a
shortcut around it.

Assembly is delegated to the builder stages in :mod:`repro.core.stages`:
each stage registers named services on a
:class:`~repro.platform.registry.PlatformRuntime`, which starts them in
dependency order and shuts them down (via a simulator shutdown hook) when
the run ends.  The runner keeps its flat attribute surface — ``.agent``,
``.field``, ``.scheduler`` and friends — so callers are unaffected by the
layering underneath.
"""

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, Optional

from repro.core.deployment import DeploymentKind
from repro.core.security_profile import SecurityConfig, SecurityStack
from repro.core.stages import FaultInjectionStage, ResilienceStage, default_stages
from repro.devices.actuators import CenterPivot, Valve
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.devices.drone import Drone
from repro.devices.sensors import SoilMoistureProbe
from repro.fog.node import FogNode
from repro.fog.replication import Replicator
from repro.irrigation.policy import SoilMoisturePolicy
from repro.irrigation.scheduler import PlatformScheduler
from repro.network.topology import Network
from repro.physics.crop import Crop
from repro.physics.soil import LOAM, SoilProperties
from repro.physics.weather import ClimateProfile
from repro.platform.registry import PlatformRuntime
from repro.resilience import CircuitBreaker, DegradedModePolicy, ResilienceConfig, Supervisor
from repro.simkernel.clock import DAY, HOUR
from repro.simkernel.simulator import Simulator
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import KernelProfiler
from repro.telemetry.tracing import NULL_TRACER, TraceConfig, Tracer, log_sampler


@dataclass
class PilotConfig:
    name: str
    farm: str
    climate: ClimateProfile
    crop: Crop
    soil: SoilProperties = LOAM
    rows: int = 4
    cols: int = 4
    zone_area_ha: float = 1.0
    spatial_cv: float = 0.2
    season_days: Optional[int] = None  # defaults to the crop season
    start_day_of_year: int = 1
    deployment: DeploymentKind = DeploymentKind.FOG
    irrigation_kind: str = "valves"  # "valves" | "pivot" | "none"
    scheduler_kind: str = "smart"  # "smart" | "fixed" | "none"
    policy: Optional[SoilMoisturePolicy] = None
    fixed_interval_days: int = 3
    fixed_depth_mm: float = 25.0
    probe_coverage: float = 1.0
    probe_interval_s: float = 1800.0
    # Batched sampling: devices enroll in a per-farm SweepScheduler — one
    # kernel event per (farm, report-interval) tick samples the whole
    # group — instead of one firmware-loop process (and one timer event
    # per report) per device.  Tier-B schedule change: the group draws a
    # single start phase from the `sweep:<farm>` stream where legacy mode
    # phase-shifts each device from its own stream, so event timestamps
    # differ; pinned fixtures were re-pinned when this became the default.
    batched_sampling: bool = True
    valve_rate_mm_h: float = 8.0
    pivot_rate_mm_h: float = 10.0
    pump_head_m: float = 45.0
    initial_theta: Optional[float] = None
    drone_survey_interval_days: int = 7
    forecast_quality: float = 1.0  # 1 = perfect rain forecast, 0 = none
    uniform_pivot: bool = False  # True = no VRI: worst-zone depth everywhere
    security: SecurityConfig = dataclass_field(default_factory=SecurityConfig)
    supply_gate: Optional[Callable[[float], float]] = None
    # Collect platform metrics during the run.  Enabled metrics never
    # perturb determinism (instruments neither schedule events nor draw
    # RNG); disabling swaps in the shared no-op registry for truly
    # zero-overhead hot paths.
    metrics_enabled: bool = True
    # Declarative chaos: a schedule of typed fault events executed by a
    # FaultInjector service (see repro/faults/).  None keeps the service
    # graph — and seed-pinned event sequences — exactly fault-free.
    fault_plan: Optional[FaultPlan] = None
    # The resilience layer (supervision, backpressure, uplink breaker,
    # degraded-mode autonomy — see repro/resilience/).  Same contract as
    # fault_plan: None keeps the pinned service graph untouched.
    resilience: Optional[ResilienceConfig] = None
    # End-to-end causal tracing (see repro/telemetry/tracing.py).  Same
    # contract again: None installs the shared NULL_TRACER, so the pinned
    # service graph and event sequences are untouched; a TraceConfig —
    # even TraceConfig() — enables span collection.
    tracing: Optional[TraceConfig] = None
    # Kernel profiling: wall/sim-time accounting per event key (see
    # repro/telemetry/profile.py).  Reads perf_counter only; never
    # perturbs determinism, but off by default to keep the hot loop bare.
    profile: bool = False
    seed: int = 0

    @property
    def effective_season_days(self) -> int:
        return self.season_days if self.season_days is not None else self.crop.season_days


@dataclass
class PilotReport:
    name: str
    season_days: int
    irrigation_m3: float
    irrigation_mm_per_ha: float
    rain_mm: float
    pump_kwh: float
    pivot_move_kwh: float
    relative_yield: float
    yield_t: float
    decision_cycles: int
    decisions: int
    commands_sent: int
    skipped_no_data: int
    skipped_stale: int
    measures_processed: int
    measures_dropped_unprovisioned: int
    broker_publishes_in: int
    broker_denied: int
    devices_dead: int
    replicator_synced: int
    replicator_dropped: int
    alerts: int
    quarantined_devices: int
    # Resilience layer (all zero when PilotConfig.resilience is None —
    # and *must* stay zero for supervised fault-free runs, the idle-path
    # determinism contract the pinned fixtures enforce).
    resilience_restarts: int = 0
    breaker_opens: int = 0
    degraded_episodes: int = 0
    reconciled_decisions: int = 0

    @property
    def total_energy_kwh(self) -> float:
        return self.pump_kwh + self.pivot_move_kwh


class PilotRunner:
    """Assembles one pilot on a :class:`PlatformRuntime` and drives it.

    Layer attributes populated by the builder stages (kept flat here for
    callers): ``security``, ``cloud``, ``fog``, ``replicator``,
    ``broker_address``, ``context``, ``history``, ``agent``, ``field``,
    ``weather``, ``ndvi_trackers``, ``pump``, ``flow_meter``,
    ``weather_station``, ``probes``, ``valves``, ``pivot``, ``drone``,
    ``scheduler``.
    """

    security: SecurityStack
    fog: Optional[FogNode]
    replicator: Optional[Replicator]
    probes: Dict[str, SoilMoistureProbe]
    valves: Dict[str, Valve]
    pivot: Optional[CenterPivot]
    drone: Optional[Drone]
    scheduler: Optional[PlatformScheduler]
    fault_injector: Optional[FaultInjector]
    supervisor: Optional[Supervisor]
    uplink_breaker: Optional[CircuitBreaker]
    degraded_mode: Optional[DegradedModePolicy]

    def __init__(self, config: PilotConfig, *, rebuilding: bool = False) -> None:
        self.config = config
        metrics = MetricsRegistry(enabled=config.metrics_enabled)
        if config.tracing is not None:
            self.tracer = Tracer(
                seed=config.seed,
                sample_rate=config.tracing.sample_rate,
                max_spans=config.tracing.max_spans,
            )
        else:
            self.tracer = NULL_TRACER
        self.profiler = KernelProfiler() if config.profile else None
        self.sim = Simulator(
            seed=config.seed, metrics=metrics, tracer=self.tracer, profiler=self.profiler
        )
        if config.tracing is not None and config.tracing.log_sample_rate < 1.0:
            self.sim.trace.set_sampler(
                log_sampler(config.seed, config.tracing.log_sample_rate)
            )
        if self.profiler is not None:
            self.profiler.install_metrics(metrics)
        self.net = Network(self.sim, name=config.name)
        self.runtime = PlatformRuntime(metrics=metrics)
        self.fault_injector = None
        self.supervisor = None
        self.uplink_breaker = None
        self.degraded_mode = None
        self.stages = default_stages()
        if config.fault_plan is not None:
            self.stages.append(FaultInjectionStage())
        if config.resilience is not None:
            self.stages.append(ResilienceStage())
        for stage in self.stages:
            stage.register(self)
        self.runtime.start(rebuilding=rebuilding)
        # Wind the services down when the simulation run ends.
        self.sim.add_shutdown_hook(self.runtime.shutdown)
        self.season_day = 0
        self._daily_process = None
        self._report_cache: Optional[PilotReport] = None
        # The season driver is the runner's own process; registering its
        # factory makes the runner rebuildable for checkpoint restore.
        self.sim.register_process_factory("season", self._daily_loop)

    # -- metrics -----------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics registry (shared by kernel and services)."""
        return self.sim.metrics

    def metrics_snapshot(self) -> dict:
        """Point-in-time snapshot of every instrument (see telemetry docs)."""
        return self.sim.metrics.snapshot()

    def zone_entity_id(self, zone) -> str:
        return f"urn:AgriParcel:{self.config.farm}:{zone.row}-{zone.col}"

    # -- forecast -----------------------------------------------------------

    def _forecast_rain(self) -> float:
        """Forecast of today's rain (applied at the coming midnight)."""
        if self.season_day >= len(self.weather):
            return 0.0
        actual = self.weather[self.season_day].rain_mm
        quality = self.config.forecast_quality
        if quality >= 1.0:
            return actual
        noise = self._forecast_rng.bounded_gauss(1.0, 1.0 - quality, 0.0, 2.0)
        return actual * quality * noise

    # -- fixed-calendar baseline ----------------------------------------------------

    def _fixed_schedule_loop(self):
        config = self.config
        yield 6 * HOUR
        while True:
            if self.season_day % config.fixed_interval_days == 0:
                if config.irrigation_kind == "valves":
                    for valve in self.valves.values():
                        self.agent.send_command(
                            valve.config.device_id,
                            {"cmd": "open", "depth_mm": config.fixed_depth_mm},
                        )
                elif self.pivot is not None:
                    self.agent.send_command(
                        self.pivot.config.device_id,
                        {"cmd": "start_pass", "depth_mm": config.fixed_depth_mm},
                    )
            yield DAY

    # -- season driver -----------------------------------------------------------

    def _daily_loop(self):
        config = self.config
        survey_every = config.drone_survey_interval_days
        while self.season_day < config.effective_season_days:
            today = self.weather[self.season_day]
            self.weather_station.today = today
            # Update scheduler bindings with the crop's current root zone.
            self._refresh_bindings()
            if (
                self.drone is not None
                and survey_every > 0
                and self.season_day % survey_every == 0
            ):
                self.sim.schedule(10 * HOUR, self.drone.start_survey, label="survey")
            yield DAY
            # Midnight: apply the day's weather to the soil/crop.
            self.field.advance_day(today.et0_mm, today.rain_mm)
            for zone in self.field:
                self.ndvi_trackers[zone.zone_id].record_day(
                    zone.water_balance.stress_coefficient_ks
                )
            self.season_day += 1

    def _refresh_bindings(self) -> None:
        if self.scheduler is None:
            return
        day = self.season_day
        crop = self.config.crop
        root = crop.root_depth_at(day)
        p = crop.stage_at(min(day, crop.season_days - 1)).depletion_fraction_p
        for binding in self.scheduler._valve_bindings:
            binding["root_depth_m"] = root
            binding["p"] = p
        for pivot_binding in self.scheduler._pivot_bindings:
            for binding in pivot_binding["zones"]:
                binding["root_depth_m"] = root
                binding["p"] = p

    # -- fault injection -----------------------------------------------------------

    def schedule_wan_partition(self, start_s: float, duration_s: float) -> None:
        """Cut the farm↔cloud WAN for ``duration_s`` (E9's fault)."""
        a, b = self._wan_pair
        self.sim.schedule_at(start_s, lambda: self.net.partition(a, b), label="partition")
        self.sim.schedule_at(start_s + duration_s, lambda: self.net.heal(a, b), label="heal")

    # -- run & report -----------------------------------------------------------

    @property
    def season_end_s(self) -> float:
        """The simulation time at which :meth:`run_season` stops."""
        return self.config.effective_season_days * DAY + HOUR

    def start_season(self) -> None:
        """Spawn the season driver process.  Idempotent."""
        if self._daily_process is None:
            self._daily_process = self.sim.spawn_registered("season")

    def run_season(self) -> PilotReport:
        self.start_season()
        self.sim.run(until=self.season_end_s)
        return self.report()

    def run_days(self, days: float) -> None:
        self.start_season()
        self.sim.run(until=self.sim.now + days * DAY)

    def run_until(self, t: float) -> float:
        """Advance to the barrier ``t`` without firing shutdown hooks.

        Segmented execution for checkpointing: a later :meth:`run_days` /
        ``sim.run`` continues bit-identically from the barrier.
        """
        self.start_season()
        return self.sim.run_until(t)

    def report(self) -> PilotReport:
        config = self.config
        scheduler_stats = self.scheduler.stats if self.scheduler else None
        broker = self.fog.mqtt if self.fog is not None else self.cloud.mqtt
        devices = [
            self.pump, self.flow_meter, self.weather_station,
            *self.probes.values(), *self.valves.values(),
        ]
        if self.pivot is not None:
            devices.append(self.pivot)
        if self.drone is not None:
            devices.append(self.drone)
        quarantined = len(self.security.alert_manager.quarantined) \
            if self.security.alert_manager else 0
        alerts = len(self.security.alert_manager.alerts) \
            if self.security.alert_manager else 0
        return PilotReport(
            name=config.name,
            season_days=self.season_day,
            irrigation_m3=self.field.total_irrigation_m3(),
            irrigation_mm_per_ha=(
                self.field.total_irrigation_m3() / (self.field.area_ha * 10.0)
                if self.field.area_ha else 0.0
            ),
            rain_mm=sum(d.rain_mm for d in self.weather[: self.season_day]),
            pump_kwh=self.pump.total_kwh,
            pivot_move_kwh=self.pivot.move_energy_kwh if self.pivot else 0.0,
            relative_yield=self.field.mean_relative_yield(),
            yield_t=self.field.total_yield_t(),
            decision_cycles=scheduler_stats.cycles if scheduler_stats else 0,
            decisions=scheduler_stats.decisions if scheduler_stats else 0,
            commands_sent=scheduler_stats.commands_sent if scheduler_stats else 0,
            skipped_no_data=scheduler_stats.skipped_no_data if scheduler_stats else 0,
            skipped_stale=scheduler_stats.skipped_stale if scheduler_stats else 0,
            measures_processed=self.agent.stats.measures_processed,
            measures_dropped_unprovisioned=self.agent.stats.measures_dropped_unprovisioned,
            broker_publishes_in=broker.stats.publishes_in if broker else 0,
            broker_denied=(broker.stats.denied_publish + broker.stats.denied_subscribe)
            if broker else 0,
            devices_dead=sum(1 for d in devices if d.dead),
            replicator_synced=self.replicator.updates_synced if self.replicator else 0,
            replicator_dropped=self.replicator.updates_dropped_overflow if self.replicator else 0,
            alerts=alerts,
            quarantined_devices=quarantined,
            resilience_restarts=self.supervisor.total_restarts if self.supervisor else 0,
            breaker_opens=self.uplink_breaker.opens if self.uplink_breaker else 0,
            degraded_episodes=self.degraded_mode.episodes if self.degraded_mode else 0,
            reconciled_decisions=self.degraded_mode.reconciled if self.degraded_mode else 0,
        )
