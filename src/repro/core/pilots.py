"""The four SWAMP pilots (paper §I), as PilotConfig factories.

Each factory returns a ready :class:`~repro.core.pilot.PilotRunner` plus
the pilot-specific water infrastructure where relevant.  The knobs mirror
each pilot's stated primary goal:

1. **CBEC** (Bologna/Italy) — optimize water *distribution* to farms:
   processing tomato on the Emilia plain, cloud deployment, valve
   irrigation fed by a canal network with seepage losses; the scheduler's
   demand is gated by the daily canal allocation.
2. **Intercrop** (Cartagena/Spain) — use water more *rationally* in a dry
   area supplied partly by desalination: lettuce, valve irrigation, the
   scheduler gated by a cost-ordered source mix.
3. **Guaspari** (Pinhal/Brazil) — improve *wine quality* with winter-season
   irrigation: grapes under regulated deficit irrigation, fog deployment
   (hilly terrain, flaky backhaul).
4. **MATOPIBA** (Barreiras/Brazil) — *VRI on center pivots* for soybean,
   saving water and energy: big spatially variable field, pivot
   irrigation, mobile-fog deployment with a survey drone.
"""

from typing import Tuple

from repro.core.deployment import DeploymentKind
from repro.core.pilot import PilotConfig, PilotRunner
from repro.core.security_profile import SecurityConfig
from repro.faults.plan import FaultPlan
from repro.irrigation.distribution import Canal, DistributionNetwork, FarmOfftake, Reservoir
from repro.irrigation.policy import DeficitPolicy, SoilMoisturePolicy
from repro.irrigation.sources import DesalinationPlant, SourceMixOptimizer, WaterSource
from repro.physics.crop import GUASPARI_GRAPE, LETTUCE, SOYBEAN, TOMATO_PROCESSING
from repro.physics.soil import CLAY, LOAM, SANDY_LOAM, SILTY_CLAY
from repro.physics.weather import BARREIRAS_MATOPIBA, CARTAGENA, EMILIA_ROMAGNA, PINHAL
from repro.resilience import ResilienceConfig
from repro.telemetry.tracing import TraceConfig


def build_cbec_pilot(
    seed: int = 0, security: SecurityConfig = None, fault_plan: FaultPlan = None,
    resilience: ResilienceConfig = None, tracing: TraceConfig = None,
    profile: bool = False, scheduler_kind: str = "smart",
    rebuilding: bool = False,
) -> Tuple[PilotRunner, DistributionNetwork]:
    """CBEC: tomato on the Emilia plain, canal-fed, cloud deployment."""
    reservoir = Reservoir("po-offtake", capacity_m3=60_000.0)
    network = DistributionNetwork(reservoir)
    network.add_canal(Canal("primary", None, capacity_m3_day=30_000.0, loss_fraction=0.08))
    network.add_canal(Canal("secondary", "primary", capacity_m3_day=12_000.0, loss_fraction=0.05))
    farm = network.add_farm(FarmOfftake("cbec-farm", "secondary", priority=1))

    def supply_gate(demand_m3: float) -> float:
        network.set_demand("cbec-farm", demand_m3)
        allocations = network.allocate()
        granted = allocations.get("cbec-farm", 0.0)
        # The reservoir refills overnight from the river offtake.
        reservoir.inflow(demand_m3 * 1.2 + 500.0)
        return granted / demand_m3 if demand_m3 > 0 else 1.0

    config = PilotConfig(
        name="cbec",
        farm="cbec",
        climate=EMILIA_ROMAGNA,
        crop=TOMATO_PROCESSING,
        soil=SILTY_CLAY,
        rows=4, cols=4, zone_area_ha=2.0,
        spatial_cv=0.12,
        start_day_of_year=121,  # transplant early May
        deployment=DeploymentKind.CLOUD_ONLY,
        irrigation_kind="valves",
        scheduler_kind=scheduler_kind,
        supply_gate=supply_gate,
        security=security or SecurityConfig(),
        fault_plan=fault_plan,
        resilience=resilience,
        tracing=tracing,
        profile=profile,
        seed=seed,
    )
    return PilotRunner(config, rebuilding=rebuilding), network


def build_intercrop_pilot(
    seed: int = 0, security: SecurityConfig = None, fault_plan: FaultPlan = None,
    resilience: ResilienceConfig = None, tracing: TraceConfig = None,
    profile: bool = False, scheduler_kind: str = "smart",
    rebuilding: bool = False,
) -> Tuple[PilotRunner, SourceMixOptimizer]:
    """Intercrop: lettuce near Cartagena, desalination-backed source mix."""
    well = WaterSource("well", capacity_m3_day=220.0, cost_eur_m3=0.09, energy_kwh_m3=0.6)
    transfer = WaterSource("tajo-segura", capacity_m3_day=150.0, cost_eur_m3=0.32,
                           energy_kwh_m3=1.2)
    desalination = DesalinationPlant(capacity_m3_day=800.0)
    optimizer = SourceMixOptimizer([well, transfer, desalination])

    def supply_gate(demand_m3: float) -> float:
        result = optimizer.allocate_day(demand_m3)
        return result.supplied_m3 / demand_m3 if demand_m3 > 0 else 1.0

    config = PilotConfig(
        name="intercrop",
        farm="intercrop",
        climate=CARTAGENA,
        crop=LETTUCE,
        soil=SANDY_LOAM,
        rows=4, cols=4, zone_area_ha=0.5,
        spatial_cv=0.10,
        start_day_of_year=274,  # autumn planting
        deployment=DeploymentKind.CLOUD_ONLY,
        irrigation_kind="valves",
        scheduler_kind=scheduler_kind,
        policy=SoilMoisturePolicy(trigger_fraction=0.8, max_application_mm=15.0),
        valve_rate_mm_h=12.0,  # drip lines
        pump_head_m=25.0,
        supply_gate=supply_gate,
        security=security or SecurityConfig(),
        fault_plan=fault_plan,
        resilience=resilience,
        tracing=tracing,
        profile=profile,
        seed=seed,
    )
    return PilotRunner(config, rebuilding=rebuilding), optimizer


def build_guaspari_pilot(
    seed: int = 0, security: SecurityConfig = None, fault_plan: FaultPlan = None,
    resilience: ResilienceConfig = None, tracing: TraceConfig = None,
    profile: bool = False, scheduler_kind: str = "smart",
    rebuilding: bool = False,
) -> PilotRunner:
    """Guaspari: winter wine grapes under regulated deficit irrigation."""
    config = PilotConfig(
        name="guaspari",
        farm="guaspari",
        climate=PINHAL,
        crop=GUASPARI_GRAPE,
        soil=CLAY,
        rows=3, cols=4, zone_area_ha=1.0,
        spatial_cv=0.18,
        start_day_of_year=91,  # April budbreak for the June-August harvest
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind=scheduler_kind,
        policy=DeficitPolicy(deficit_stages=("veraison", "ripening"), deficit_target=0.6,
                             trigger_fraction=0.85),
        valve_rate_mm_h=6.0,
        pump_head_m=60.0,  # hillside vineyard
        security=security or SecurityConfig(),
        fault_plan=fault_plan,
        resilience=resilience,
        tracing=tracing,
        profile=profile,
        seed=seed,
    )
    return PilotRunner(config, rebuilding=rebuilding)


def build_matopiba_pilot(
    seed: int = 0,
    security: SecurityConfig = None,
    spatial_cv: float = 0.25,
    scheduler_kind: str = "smart",
    probe_coverage: float = 1.0,
    deployment: DeploymentKind = DeploymentKind.MOBILE_FOG,
    uniform_pivot: bool = False,
    rows: int = 6,
    cols: int = 6,
    probe_interval_s: float = 1800.0,
    season_days: int = None,
    fault_plan: FaultPlan = None,
    resilience: ResilienceConfig = None,
    tracing: TraceConfig = None,
    profile: bool = False,
    rebuilding: bool = False,
) -> PilotRunner:
    """MATOPIBA: VRI soybean under a center pivot in the dry season.

    The grid/probe-interval knobs let the benchmark harness trade spatial
    resolution for runtime without changing the scenario.
    """
    config = PilotConfig(
        name="matopiba",
        farm="matopiba",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=SANDY_LOAM,
        rows=rows, cols=cols, zone_area_ha=90.0 / (rows * cols),  # 90 ha circle
        spatial_cv=spatial_cv,
        season_days=season_days,
        start_day_of_year=135,  # dry-season planting (mid May)
        deployment=deployment,
        irrigation_kind="pivot",
        scheduler_kind=scheduler_kind,
        fixed_interval_days=3,
        fixed_depth_mm=18.0,
        probe_coverage=probe_coverage,
        probe_interval_s=probe_interval_s,
        pivot_rate_mm_h=12.0,
        pump_head_m=50.0,
        uniform_pivot=uniform_pivot,
        security=security or SecurityConfig(),
        fault_plan=fault_plan,
        resilience=resilience,
        tracing=tracing,
        profile=profile,
        seed=seed,
    )
    return PilotRunner(config, rebuilding=rebuilding)


ALL_PILOTS = {
    "cbec": lambda seed=0: build_cbec_pilot(seed)[0],
    "intercrop": lambda seed=0: build_intercrop_pilot(seed)[0],
    "guaspari": lambda seed=0: build_guaspari_pilot(seed),
    "matopiba": lambda seed=0: build_matopiba_pilot(seed),
}

# Uniform builder surface for the run() entrypoint: every pilot accepts
# the same keyword set (builders that also return water infrastructure
# strip it here — callers needing the infrastructure use the build_*
# functions directly).
PILOT_BUILDERS = {
    "cbec": lambda **kw: build_cbec_pilot(**kw)[0],
    "intercrop": lambda **kw: build_intercrop_pilot(**kw)[0],
    "guaspari": lambda **kw: build_guaspari_pilot(**kw),
    "matopiba": lambda **kw: build_matopiba_pilot(**kw),
}
