"""Switchable security wiring for a pilot.

One :class:`SecurityConfig` per pilot decides which of the paper's
mechanisms are active, so every experiment can run the same pilot with a
mechanism on and off:

* ``auth`` — Keyrock/OAuth2/PEP on the MQTT broker: devices CONNECT with a
  bearer token as password; per-farm topic ACLs through the PDP (E10);
* ``encryption`` — a per-device :class:`SecureChannel` (telemetry
  confidentiality end-to-end; E7) plus its energy cost on the device (E13);
* ``detection`` — the behavioral DetectionEngine with quarantine wired to
  IoT-agent deprovisioning (E5/E8).
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.agents.iot_agent import IoTAgent
from repro.context.broker import ContextBroker
from repro.devices.base import Device
from repro.security.auth.identity import IdentityManager
from repro.security.auth.oauth import OAuthServer
from repro.security.auth.pdp import Policy, PolicyDecisionPoint
from repro.security.auth.pep import PepProxy
from repro.security.crypto.channel import SecureChannel, SecureChannelPair
from repro.security.detection.engine import AlertManager, DetectionEngine
from repro.security.detection.sequence import CommandRhythmMonitor
from repro.security.ledger.blockchain import Blockchain, LifecycleEvent
from repro.security.ledger.contracts import AuthorizationContract
from repro.security.ledger.registry import DeviceLifecycleRegistry
from repro.simkernel.simulator import Simulator


@dataclass
class SecurityConfig:
    auth: bool = False
    encryption: bool = False
    detection: bool = False
    # Blockchain device-lifecycle ledger: device enrolments and
    # quarantines are committed on-chain, and every actuator command is
    # gated by the authorization smart contract (paper §III).
    ledger: bool = False
    # Command-rhythm monitor: learns each actuator's command sequence and
    # flags off-pattern commands ("the expected sequence of events").
    command_rhythm: bool = False
    detection_training_s: float = 7 * 86400.0
    # Alerts per device per day-window before quarantine.  Calibrated to
    # the alert rates the detectors actually produce: a clean device on a
    # thin baseline emits isolated alerts (~3/day at worst — the paper's
    # partial-profile caveat), while a tampered device re-alarms every few
    # samples (13+/day for a moderate bias at 30-min sampling).
    quarantine_threshold: int = 10
    # Sensor attributes the detection engine profiles.  Monotone counters
    # (pump totals, applied depth) are excluded by construction — a counter
    # always "drifts" — and so are the weather station's attributes, which
    # repeat one daily value hourly (23 identical samples then a step:
    # a false-positive machine for stuck/jump detectors).  Weather sanity
    # is cross-checked against the profile builder instead.
    watched_attributes: tuple = ("soilMoisture", "ndvi")


class ChannelRegistry:
    """Per-device secure channels, routed by the device id in the topic."""

    def __init__(self) -> None:
        self._platform_endpoints: Dict[str, SecureChannel] = {}
        self.decode_failures = 0

    def register(self, device_id: str, platform_endpoint: SecureChannel) -> None:
        self._platform_endpoints[device_id] = platform_endpoint

    def decoder(self, topic: str, payload: bytes) -> Optional[bytes]:
        """payload_decoder for the IoT agent's MQTT client."""
        device_id = topic.rsplit("/", 1)[-1]
        endpoint = self._platform_endpoints.get(device_id)
        if endpoint is None:
            # Not an encrypted device (or unknown): pass through so that
            # plaintext devices coexist with encrypted ones.
            return payload
        plaintext = endpoint.mqtt_decoder_from_wire(topic, payload)
        if plaintext is None:
            self.decode_failures += 1
        return plaintext


class SecurityStack:
    """The instantiated mechanisms for one pilot."""

    def __init__(self, sim: Simulator, farm: str, config: SecurityConfig) -> None:
        self.sim = sim
        self.farm = farm
        self.config = config
        self.identity = IdentityManager(sim.rng.stream(f"idm:{farm}"))
        self.oauth = OAuthServer(sim, self.identity, sim.rng.stream(f"oauth:{farm}"),
                                 access_token_ttl_s=14 * 86400.0)
        self.pdp = PolicyDecisionPoint()
        self.pep = PepProxy(sim, self.oauth, self.pdp)
        self.channels = ChannelRegistry()
        self.detection_engine: Optional[DetectionEngine] = None
        self.alert_manager: Optional[AlertManager] = None
        self.chain: Optional[Blockchain] = None
        self.lifecycle_registry: Optional[DeviceLifecycleRegistry] = None
        self.contract: Optional[AuthorizationContract] = None
        self.rhythm_monitor: Optional[CommandRhythmMonitor] = None
        if config.ledger:
            self.chain = Blockchain(validators=[f"{farm}-coop", "platform", "ag-authority"])
            self.lifecycle_registry = DeviceLifecycleRegistry(self.chain)
            self.contract = AuthorizationContract(self.lifecycle_registry)
        if config.command_rhythm:
            import re as _re

            # Pool rhythm models by device class: "farm-valve-0-1" and
            # "farm-valve-1-0" share one model (commands are too sparse
            # per device to train within a season).
            def device_class(device_id: str) -> str:
                return _re.sub(r"(-\d+)+$", "", device_id)

            self.rhythm_monitor = CommandRhythmMonitor(
                training_window_s=config.detection_training_s,
                group_of=device_class,
            )
        if config.auth:
            self._install_default_policies()

    def _install_default_policies(self) -> None:
        # Devices and services touch only their own farm's topic tree.
        self.pdp.add_policy(
            Policy("own-farm-mqtt", "permit", {"publish", "subscribe"},
                   r"^swamp/", same_farm=True)
        )

    # -- broker hooks -----------------------------------------------------------

    def broker_hooks(self) -> dict:
        if not self.config.auth:
            return {"authenticator": None, "authorizer": None}
        return {
            "authenticator": self.pep.mqtt_authenticator,
            "authorizer": self.pep.mqtt_authorizer,
        }

    # -- device enrolment -----------------------------------------------------------

    def enroll_device(self, device: Device, device_key: str) -> None:
        """Register identity, issue token and (optionally) set up crypto."""
        if self.chain is not None:
            device_id = device.config.device_id
            now = self.sim.now
            self.chain.submit(LifecycleEvent(device_id, "manufactured", "vendor", now))
            self.chain.submit(
                LifecycleEvent(device_id, "provisioned", self.farm, now, {"owner": self.farm})
            )
            self.chain.submit(LifecycleEvent(device_id, "activated", self.farm, now))
            self.chain.seal_block(now)
        if self.config.auth:
            self.identity.register(
                device.config.device_id, device_key, kind="device", farm=self.farm
            )
            token = self.oauth.device_grant(device.config.device_id, device_key)
            device.client.password = token.access_token
        if self.config.encryption:
            pair = SecureChannelPair(
                self.sim.rng.stream(f"chan:dev:{device.config.device_id}"),
                self.sim.rng.stream(f"chan:plat:{device.config.device_id}"),
                context=device.config.device_id.encode("utf-8"),
            )
            device.client.payload_encoder = pair.endpoint_a.mqtt_encoder
            self.channels.register(device.config.device_id, pair.endpoint_b)
            # Per-message security cost = crypto CPU + radio TX of the
            # ciphertext expansion (seq + tag bytes on the air).
            device.security_energy_j_per_msg = (
                SecureChannel.energy_cost_j(96)
                + SecureChannel.overhead_bytes() * 0.0012
            )

    def enroll_service(self, principal_id: str, secret: str, roles=("service",)) -> Optional[str]:
        """Register a service principal; returns its access token (auth on)."""
        if not self.config.auth:
            return None
        self.identity.register(principal_id, secret, kind="service",
                               farm=self.farm, roles=set(roles))
        return self.oauth.client_credentials_grant(principal_id, secret).access_token

    # -- agent + detection wiring -----------------------------------------------------

    def wire_agent(self, agent: IoTAgent) -> None:
        if self.config.encryption:
            agent.client.payload_decoder = self.channels.decoder
        if self.contract is not None:
            agent.command_gate = lambda device_id, command: self.contract.authorize(
                device_id, {"farm": self.farm}
            )
        # Command-rhythm observation happens at the *broker* via
        # wire_command_tap (covers insider-injected commands too); wiring
        # an agent-side observer as well would double-count every command.
        if self.config.auth:
            # The agent itself must be allowed on the broker.
            if self.identity.get(agent.client.client_id) is None:
                self.identity.register(
                    agent.client.client_id, "agent-secret", kind="service", farm=self.farm
                )
            token = self.oauth.client_credentials_grant(agent.client.client_id, "agent-secret")
            agent.client.password = token.access_token

    def wire_command_tap(self, network, broker_address: str) -> None:
        """Subscribe the rhythm monitor to the farm's command topics.

        The agent-side observer only sees commands the platform itself
        dispatched; this tap watches the *broker*, so commands injected by
        an insider with valid credentials (or any PEP bypass) are scored
        against the learned rhythm too.
        """
        if self.rhythm_monitor is None:
            return
        from repro.devices.codec import decode_payload
        from repro.mqtt.client import MqttClient
        from repro.network.radio import ETHERNET_LAN

        tap_client = MqttClient(
            self.sim, f"{self.farm}:cmd-tap", broker_address,
            client_id=f"cmd-tap-{self.farm}", username=self.farm,
        )
        network.add_node(tap_client)
        network.connect(tap_client.address, broker_address, ETHERNET_LAN)
        if self.config.auth:
            self.identity.register(
                tap_client.client_id, "tap-secret", kind="service", farm=self.farm
            )
            token = self.oauth.client_credentials_grant(tap_client.client_id, "tap-secret")
            tap_client.password = token.access_token
        tap_client.connect()

        def on_command(topic: str, payload: bytes, qos: int, retain: bool) -> None:
            command = decode_payload(payload)
            if command is None:
                return
            device_id = topic.rsplit("/", 1)[-1]
            self.rhythm_monitor.observe(device_id, command.get("cmd", "?"), self.sim.now)

        tap_client.subscribe(f"swamp/{self.farm}/cmd/+", qos=0, handler=on_command)
        self._command_tap_client = tap_client

    def wire_detection(self, context: ContextBroker, agent: IoTAgent) -> None:
        if not self.config.detection:
            return
        self.alert_manager = AlertManager(
            quarantine_threshold=self.config.quarantine_threshold,
            on_quarantine=lambda device_id: self._quarantine(agent, device_id),
        )
        self.detection_engine = DetectionEngine(
            self.sim, context,
            alert_manager=self.alert_manager,
            training_window_s=self.config.detection_training_s,
            watched_attributes=list(self.config.watched_attributes),
        )

    def _quarantine(self, agent: IoTAgent, device_id: str) -> None:
        agent.deprovision(device_id)
        self.oauth.revoke_principal(device_id)
        if self.chain is not None:
            # The incident becomes part of the device's on-chain history;
            # the contract then fails closed for it ("suspended" state).
            self.chain.submit(
                LifecycleEvent(device_id, "suspended", f"{self.farm}-detector", self.sim.now)
            )
            self.chain.seal_block(self.sim.now)
        self.sim.trace.emit(
            self.sim.now, "security", "device quarantined", device=device_id, farm=self.farm
        )
