"""The single run entrypoint: one typed options object, one function.

Four PRs of organic growth left three overlapping ways to start a run —
``run_pilot(config)``, the ``build_*_pilot`` factories and the CLI's own
argument plumbing, plus ``run_chaos`` with its separate signature.  This
module consolidates them: :class:`RunOptions` carries every knob (pilot,
seed, days, security, faults, resilience, tracing, profiling, metrics)
and :func:`run` interprets it, so the CLI, notebooks and tests all drive
the same code path.

Bit-identity contract: ``run(RunOptions(config=cfg))`` builds exactly
``PilotRunner(cfg)`` — no option is folded into an explicit config
unless the caller set it, so reports stay bit-identical to the
historical ``run_pilot`` outputs (the shim completed its deprecation
cycle and is gone).  ``serve_trace`` opts the run into the north-facing
service layer: the trace's tenants are registered and its requests
replayed against the pilot on the simulation clock.  With the option
unset nothing service-related is constructed, so pinned fixtures are
untouched.
"""

import dataclasses
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, Optional, Union

from repro.core.pilot import PilotConfig, PilotReport, PilotRunner
from repro.core.security_profile import SecurityConfig
from repro.simkernel.clock import DAY
from repro.faults.plan import FaultPlan
from repro.resilience import ResilienceConfig
from repro.telemetry.tracing import TraceConfig

__all__ = ["RunOptions", "RunResult", "parse_security_spec", "run"]

SECURITY_FLAGS = ("auth", "encryption", "detection", "ledger", "command_rhythm")


def parse_security_spec(spec: Optional[str]) -> SecurityConfig:
    """Parse a comma-separated flag list (``"auth,encryption"``).

    Raises :class:`ValueError` on unknown flags; the CLI converts that to
    a ``SystemExit`` with the same message.
    """
    config = SecurityConfig()
    if not spec:
        return config
    for flag in spec.split(","):
        flag = flag.strip()
        if not flag:
            continue
        if flag not in SECURITY_FLAGS:
            raise ValueError(
                f"unknown security flag {flag!r}; choose from {', '.join(SECURITY_FLAGS)}"
            )
        setattr(config, flag, True)
    return config


@dataclass
class RunOptions:
    """Everything a run needs, in one typed object.

    Exactly one of two modes applies:

    * ``config`` set — run that :class:`PilotConfig` as-is (the
      ``run_pilot`` replacement).  Tracing/profiling options are applied
      as config overrides *only when explicitly enabled*, so a bare
      ``RunOptions(config=cfg)`` reproduces ``run_pilot(cfg)``
      bit-identically.
    * ``pilot`` named — build the pilot through its factory with the
      seed/security/faults/resilience/tracing knobs below (the CLI path).

    ``chaos=True`` switches to the seeded chaos harness
    (:func:`repro.faults.chaos.run_chaos`) instead of a plain season.
    """

    pilot: str = "matopiba"
    config: Optional[PilotConfig] = None
    seed: int = 0
    # Truncate the season to N days (None = full season).
    days: Optional[float] = None
    # SecurityConfig, a "auth,encryption" spec string, or None (defaults).
    security: Union[SecurityConfig, str, None] = None
    # FaultPlan, a path to a fault-plan JSON file, or None.
    faults: Union[FaultPlan, str, None] = None
    # ResilienceConfig, True (defaults), or None/False (off).
    resilience: Union[ResilienceConfig, bool, None] = None
    metrics: bool = True
    metrics_path: Optional[str] = None
    # Tracing: ``trace=True`` (or a trace_path) enables span collection;
    # the exported Chrome-trace JSON is written to ``trace_path``.
    trace: bool = False
    trace_path: Optional[str] = None
    trace_sample_rate: float = 1.0
    trace_max_spans: int = 200_000
    trace_log_sample_rate: float = 1.0
    # Kernel profiling (top-K hottest event keys; ``profile.*`` metrics).
    profile: bool = False
    profile_top: int = 10
    # Builder-path extras: scheduler policy arm and any pilot-specific
    # factory kwargs (e.g. matopiba's rows/cols/probe_interval_s).
    scheduler_kind: Optional[str] = None
    pilot_kwargs: Dict[str, Any] = dataclass_field(default_factory=dict)
    # Chaos mode (see repro.faults.chaos).
    chaos: bool = False
    chaos_supervised: bool = True
    # Checkpoint/restore (see repro.core.checkpoint).  ``checkpoint``
    # writes a restorable checkpoint file during the run (every
    # ``checkpoint_every_s`` sim-seconds, or once at mid-run); ``restore``
    # ignores the build knobs above and resumes the checkpointed run.
    checkpoint: Optional[str] = None
    checkpoint_every_s: Optional[float] = None
    restore: Optional[str] = None
    # North-facing service layer (see repro.service): a RequestTrace (or
    # path to its JSON) replayed against the running pilot, and an
    # optional path for the canonical response log.
    serve_trace: Any = None
    serve_responses: Optional[str] = None
    # Durable history (see repro.store): a directory for the append-only
    # segment store behind ShortTermHistory.  None (default) constructs
    # nothing, keeping pinned fixtures byte-identical.
    store_dir: Optional[str] = None
    store_flush_s: float = 60.0
    store_segment_bytes: int = 4 * 1024 * 1024
    # Columnar compaction (see repro.store.columnar): drain sealed WAL
    # segments into zone-mapped chunk files every this many sim-seconds
    # (None = no compaction), optionally applying retention caps —
    # drops are deterministic whole-chunk evictions at compaction time.
    store_compact_s: Optional[float] = None
    store_retention_age_s: Optional[float] = None
    store_retention_bytes: Optional[int] = None

    def trace_config(self) -> Optional[TraceConfig]:
        if not (self.trace or self.trace_path):
            return None
        return TraceConfig(
            sample_rate=self.trace_sample_rate,
            max_spans=self.trace_max_spans,
            log_sample_rate=self.trace_log_sample_rate,
        )

    def resolved_security(self) -> Optional[SecurityConfig]:
        if isinstance(self.security, str):
            return parse_security_spec(self.security)
        return self.security

    def resolved_faults(self) -> Optional[FaultPlan]:
        if isinstance(self.faults, str):
            return FaultPlan.load(self.faults)
        return self.faults

    def resolved_serve_trace(self):
        if self.serve_trace is None:
            return None
        if isinstance(self.serve_trace, str):
            from repro.service.loadgen import RequestTrace

            return RequestTrace.load(self.serve_trace)
        return self.serve_trace

    def resolved_resilience(self) -> Optional[ResilienceConfig]:
        if self.resilience is True:
            return ResilienceConfig()
        if self.resilience is False:
            return None
        return self.resilience


@dataclass
class RunResult:
    """What :func:`run` hands back: the report plus live handles."""

    report: PilotReport
    # The finished PilotRunner — tracer, profiler, metrics, services.
    runner: Any = None
    # The ChaosRunResult when options.chaos was set (invariants, plan,
    # fingerprint); None for plain runs.
    chaos: Any = None
    # The NgsiService when options.serve_trace was set; None otherwise.
    service: Any = None


def run(options: RunOptions) -> RunResult:
    """Build, run and post-process one run per ``options``."""
    tracing = options.trace_config()
    serve_trace = options.resolved_serve_trace()
    if serve_trace is not None and (
        options.chaos or options.checkpoint is not None or options.restore is not None
    ):
        raise ValueError(
            "serve_trace is not supported with chaos, checkpoint or restore "
            "(the service pump is not part of the rebuild recipe)"
        )
    if options.store_dir is not None and (
        options.chaos or options.checkpoint is not None or options.restore is not None
    ):
        raise ValueError(
            "store_dir is not supported with chaos, checkpoint or restore "
            "(the store's flush pump is not part of the rebuild recipe)"
        )

    if options.restore is not None:
        from repro.core import checkpoint as _checkpoint

        restored = _checkpoint.restore(options.restore)
        report = _checkpoint.resume(restored)
        _write_outputs(options, restored.runner)
        return RunResult(report=report, runner=restored.runner)

    if options.checkpoint is not None and options.chaos:
        raise ValueError(
            "checkpointing is not supported in chaos mode (the chaos "
            "harness owns the run loop)"
        )

    if options.chaos:
        from repro.faults.chaos import run_chaos as _run_chaos

        result = _run_chaos(
            options.seed,
            supervised=options.chaos_supervised,
            plan=options.resolved_faults(),
            tracing=tracing,
            profile=options.profile,
        )
        _write_outputs(options, result.runner)
        return RunResult(report=result.report, runner=result.runner, chaos=result)

    recipe = None
    if options.config is not None:
        config = options.config
        # Apply overrides only when explicitly enabled: the untouched path
        # must construct exactly PilotRunner(config) for bit-identity with
        # the deprecated run_pilot shim.
        if tracing is not None or options.profile:
            config = dataclasses.replace(
                config,
                tracing=tracing if tracing is not None else config.tracing,
                profile=options.profile or config.profile,
            )
        runner = PilotRunner(config)
        if options.checkpoint is not None:
            from repro.core.checkpoint import RunRecipe

            recipe = RunRecipe(config=config)
    else:
        from repro.core.pilots import PILOT_BUILDERS

        builder = PILOT_BUILDERS.get(options.pilot)
        if builder is None:
            raise ValueError(
                f"unknown pilot {options.pilot!r}; choose from {sorted(PILOT_BUILDERS)}"
            )
        kwargs: Dict[str, Any] = {
            "seed": options.seed,
            "security": options.resolved_security(),
            "fault_plan": options.resolved_faults(),
            "resilience": options.resolved_resilience(),
            "tracing": tracing,
            "profile": options.profile,
        }
        if options.scheduler_kind is not None:
            kwargs["scheduler_kind"] = options.scheduler_kind
        kwargs.update(options.pilot_kwargs)
        runner = builder(**kwargs)
        if options.checkpoint is not None:
            from repro.core.checkpoint import RunRecipe

            # The kwargs are resolved values (dataclasses, not spec
            # strings), all picklable — the recipe rebuilds through the
            # same builder with the same inputs.
            recipe = RunRecipe(pilot=options.pilot, builder_kwargs=kwargs)

    if options.store_dir is not None:
        from repro.store.durable import attach_durable_history

        retention = None
        if (options.store_retention_age_s is not None
                or options.store_retention_bytes is not None):
            from repro.store.columnar import RetentionConfig, RetentionPolicy

            retention = RetentionConfig(default=RetentionPolicy(
                max_age_s=options.store_retention_age_s,
                max_bytes=options.store_retention_bytes,
            ))
        attach_durable_history(
            runner, options.store_dir,
            flush_interval_s=options.store_flush_s,
            max_segment_bytes=options.store_segment_bytes,
            compact_interval_s=options.store_compact_s,
            retention=retention,
        )

    service = None
    if serve_trace is not None:
        from repro.service.loadgen import schedule_trace
        from repro.service.app import NgsiService

        service = NgsiService(
            runner.sim, runner.context, runner.history, runner.security
        )
        schedule_trace(service, serve_trace)

    if options.checkpoint is not None:
        from repro.core.checkpoint import run_with_checkpoints

        horizon_s = (
            runner.sim.now + options.days * DAY
            if options.days is not None
            else runner.season_end_s
        )
        report = run_with_checkpoints(
            runner, recipe, horizon_s,
            options.checkpoint, every_s=options.checkpoint_every_s,
        )
    elif options.days is not None:
        runner.run_days(options.days)
        report = runner.report()
    else:
        report = runner.run_season()
    _write_outputs(options, runner)
    if service is not None and options.serve_responses:
        with open(options.serve_responses, "w", encoding="utf-8") as fh:
            fh.write(service.response_log())
            fh.write("\n")
    return RunResult(report=report, runner=runner, service=service)


def _write_outputs(options: RunOptions, runner) -> None:
    """Write the metrics snapshot and Chrome-trace export, if requested."""
    if runner is None:
        return
    if options.metrics_path:
        with open(options.metrics_path, "w", encoding="utf-8") as fh:
            fh.write(runner.sim.metrics.to_json())
            fh.write("\n")
    if options.trace_path:
        import json

        with open(options.trace_path, "w", encoding="utf-8") as fh:
            json.dump(runner.tracer.chrome_trace(), fh, indent=1)
            fh.write("\n")
