"""Platform core: the SWAMP composition layer.

Everything below this package is a substrate; here they are assembled into
the platform the paper describes — "the same underlying SWAMP platform can
be customized to different pilots" across "a range of deployment
configurations" (cloud, fog, mobile fog):

* :mod:`~repro.core.deployment` — deployment kinds and topology builders;
* :mod:`~repro.core.security_profile` — switchable security wiring
  (OAuth/PEP on the broker, per-device encrypted channels, the detection
  engine with quarantine);
* :mod:`~repro.core.pilot` — :class:`PilotConfig`/:class:`PilotRunner`:
  one configured farm running a full season end-to-end;
* :mod:`~repro.core.stages` — the builder stages that register each
  architectural layer as a service on the
  :class:`~repro.platform.registry.PlatformRuntime`;
* :mod:`~repro.core.pilots` — factories for the four pilots (CBEC,
  Intercrop, Guaspari, MATOPIBA).
"""

from repro.core.deployment import DeploymentKind
from repro.core.pilot import PilotConfig, PilotReport, PilotRunner
from repro.core.pilots import (
    build_cbec_pilot,
    build_guaspari_pilot,
    build_intercrop_pilot,
    build_matopiba_pilot,
)
from repro.core.security_profile import SecurityConfig

__all__ = [
    "DeploymentKind",
    "PilotConfig",
    "PilotReport",
    "PilotRunner",
    "SecurityConfig",
    "build_cbec_pilot",
    "build_guaspari_pilot",
    "build_intercrop_pilot",
    "build_matopiba_pilot",
]
