"""Fleet execution and deterministic merge.

:func:`run_fleet` expands the options into per-farm shard tasks, runs
them on an executor, and folds the shard results into one
:class:`FleetReport`.  The merge is seeded and order-stable: shard
results arrive in task order from every executor (``Pool.map`` preserves
input order; the in-process loop iterates in index order), sync batches
are folded sorted by ``(epoch, shard index)``, and the fingerprint
hashes a canonical JSON rendering that excludes wall-clock and worker
information — so the same seed yields the same fingerprint on 1, 2 or 8
workers, in-process or multiprocessing.
"""

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List

from repro.fleet.options import FleetError, FleetOptions
from repro.fleet.shard import (
    ShardExecution,
    ShardResult,
    ShardSyncBatch,
    make_tasks,
    run_shard,
)

#: Report fields averaged (not summed) in the fleet totals.
_MEAN_FIELDS = ("relative_yield",)
#: Report fields where the fleet total is the maximum across farms.
_MAX_FIELDS = ("season_days",)


@dataclass
class FleetReport:
    """The merged view of one fleet run."""

    #: Per-farm ``PilotReport`` dicts, ordered by shard index.
    farms: List[Dict[str, Any]]
    #: Fleet-wide totals: numeric report fields summed across farms
    #: (``relative_yield`` averaged, ``season_days`` maxed).
    totals: Dict[str, Any]
    #: Cloud-side ingest per epoch: every shard's sync delta summed,
    #: ordered by epoch.
    cloud_epochs: List[Dict[str, Any]]
    #: Every cross-shard sync batch, ordered by ``(epoch, shard)``.
    batches: List[Dict[str, Any]]


@dataclass
class FleetResult:
    """What :func:`run_fleet` returns."""

    report: FleetReport
    #: sha256 over the canonical report JSON — the determinism witness.
    fingerprint: str
    shards: List[ShardResult] = dataclass_field(default_factory=list)
    #: Which executor actually ran ("inprocess" | "multiprocessing").
    executor: str = "inprocess"
    events_executed: int = 0
    wall_time_s: float = 0.0


def _merge(results: List[ShardResult]) -> FleetReport:
    farms = [r.report for r in results]
    totals: Dict[str, Any] = {}
    for report in farms:
        for key, value in report.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            totals[key] = totals.get(key, 0) + value
    for key in _MEAN_FIELDS:
        if key in totals and farms:
            totals[key] = totals[key] / len(farms)
    for key in _MAX_FIELDS:
        if key in totals:
            totals[key] = max(r.get(key, 0) for r in farms)
    totals["farms"] = len(farms)

    ordered: List[ShardSyncBatch] = sorted(
        (b for r in results for b in r.batches),
        key=lambda b: (b.epoch, b.shard),
    )
    batches = [dataclasses.asdict(b) for b in ordered]
    epochs: Dict[int, Dict[str, Any]] = {}
    for batch in ordered:
        fold = epochs.setdefault(
            batch.epoch,
            {"epoch": batch.epoch, "updates_captured": 0, "updates_synced": 0,
             "batches_acked": 0, "measures_processed": 0},
        )
        fold["updates_captured"] += batch.updates_captured
        fold["updates_synced"] += batch.updates_synced
        fold["batches_acked"] += batch.batches_acked
        fold["measures_processed"] += batch.measures_processed
    cloud_epochs = [epochs[k] for k in sorted(epochs)]
    return FleetReport(
        farms=farms, totals=totals, cloud_epochs=cloud_epochs, batches=batches
    )


def fleet_fingerprint(report: FleetReport) -> str:
    """sha256 over the canonical JSON of the merged report.

    Deliberately excludes wall-clock and worker info: the fingerprint
    asserts *simulation* state, which must not depend on how the shards
    were scheduled onto hardware.
    """
    canonical = json.dumps(dataclasses.asdict(report), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _run_inprocess(tasks) -> List[ShardResult]:
    """Interleave every shard epoch-by-epoch in this process.

    Each shard's own barrier/drain sequence is identical to what
    :func:`~repro.fleet.shard.run_shard` produces in a worker — the
    shards are independent simulations, so interleaving order cannot
    leak between them.
    """
    executions = [ShardExecution(task) for task in tasks]
    barrier_lists = [e.barriers() for e in executions]
    rounds = max((len(b) for b in barrier_lists), default=0)
    for epoch in range(rounds):
        for execution, barriers in zip(executions, barrier_lists):
            if epoch < len(barriers):
                execution.advance_to(barriers[epoch], epoch)
    return [execution.finish() for execution in executions]


def _run_multiprocessing(tasks, options: FleetOptions) -> List[ShardResult]:
    from multiprocessing import get_context

    ctx = get_context(options.start_method or "spawn")
    processes = min(options.workers, len(tasks))
    with ctx.Pool(processes=processes) as pool:
        return pool.map(run_shard, tasks, chunksize=1)


def run_fleet(options: FleetOptions) -> FleetResult:
    """Run every farm in ``options`` and merge the results."""
    options.validate()
    tasks = make_tasks(options)
    executor = options.executor
    if executor == "auto":
        executor = "multiprocessing" if options.workers > 1 else "inprocess"
    wall_started = time.perf_counter()
    if executor == "inprocess":
        results = _run_inprocess(tasks)
    elif executor == "multiprocessing":
        results = _run_multiprocessing(tasks, options)
    else:  # pragma: no cover - validate() already rejected it
        raise FleetError(f"unknown executor {executor!r}")
    wall_time_s = time.perf_counter() - wall_started
    report = _merge(results)
    return FleetResult(
        report=report,
        fingerprint=fleet_fingerprint(report),
        shards=results,
        executor=executor,
        events_executed=sum(r.events_executed for r in results),
        wall_time_s=wall_time_s,
    )
