"""One fleet shard: a single farm simulated to completion in segments.

A shard wraps one :class:`~repro.core.pilot.PilotRunner` and drives it
with :meth:`~repro.simkernel.simulator.Simulator.run_until` to successive
epoch barriers.  At each barrier it drains a :class:`ShardSyncBatch` —
the *delta* of fog→cloud sync progress (and cloud-side ingest) since the
previous barrier — which is what crosses the shard boundary to the merge
layer.  Everything here is picklable: tasks go down to worker processes,
results come back.
"""

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional

from repro.fleet.options import FleetError
from repro.simkernel.clock import DAY
from repro.simkernel.rng import derive_seed


@dataclass
class ShardTask:
    """A picklable work order: build this farm, run it, report back."""

    index: int
    name: str
    pilot: str
    kwargs: Dict[str, Any]
    #: The shard's own kernel seed (already derived from the fleet seed).
    seed: int
    days: Optional[float]
    epoch_s: float


@dataclass
class ShardSyncBatch:
    """Fog→cloud sync-progress delta for one shard over one epoch."""

    shard: int
    name: str
    epoch: int
    time_s: float
    updates_captured: int = 0
    updates_synced: int = 0
    batches_acked: int = 0
    measures_processed: int = 0


@dataclass
class ShardResult:
    """Everything a finished shard sends back to the merge layer."""

    index: int
    name: str
    #: ``dataclasses.asdict(PilotReport)`` — plain dict, stays picklable
    #: and trivially comparable across executors.
    report: Dict[str, Any]
    batches: List[ShardSyncBatch] = dataclass_field(default_factory=list)
    events_executed: int = 0
    wall_time_s: float = 0.0


class ShardExecution:
    """Drives one shard's runner through its epoch barriers."""

    def __init__(self, task: ShardTask) -> None:
        from repro.core.pilots import PILOT_BUILDERS

        builder = PILOT_BUILDERS.get(task.pilot)
        if builder is None:
            raise FleetError(f"unknown pilot {task.pilot!r} in shard {task.name!r}")
        self.task = task
        self.runner = builder(seed=task.seed, **task.kwargs)
        self.horizon_s = (
            task.days * DAY if task.days is not None else self.runner.season_end_s
        )
        self.batches: List[ShardSyncBatch] = []
        self._last_counts = (0, 0, 0, 0)
        self.runner.start_season()

    def barriers(self) -> List[float]:
        """The epoch barriers strictly inside this shard's run."""
        out: List[float] = []
        t = self.task.epoch_s
        while t < self.horizon_s:
            out.append(t)
            t += self.task.epoch_s
        return out

    def _counts(self) -> tuple:
        runner = self.runner
        replicator = runner.replicator
        return (
            replicator.updates_captured if replicator else 0,
            replicator.updates_synced if replicator else 0,
            replicator.batches_acked if replicator else 0,
            runner.agent.stats.measures_processed,
        )

    def drain(self, epoch: int) -> ShardSyncBatch:
        """Capture the sync-progress delta since the previous drain."""
        counts = self._counts()
        delta = tuple(now - prev for now, prev in zip(counts, self._last_counts))
        self._last_counts = counts
        batch = ShardSyncBatch(
            shard=self.task.index,
            name=self.task.name,
            epoch=epoch,
            time_s=self.runner.sim.now,
            updates_captured=delta[0],
            updates_synced=delta[1],
            batches_acked=delta[2],
            measures_processed=delta[3],
        )
        self.batches.append(batch)
        return batch

    def advance_to(self, barrier_s: float, epoch: int) -> ShardSyncBatch:
        """Run to the barrier (hooks withheld) and drain the epoch delta."""
        self.runner.sim.run_until(barrier_s)
        return self.drain(epoch)

    def finish(self) -> ShardResult:
        """Run the final segment to the horizon and build the result."""
        import dataclasses

        self.runner.sim.run(until=self.horizon_s)
        self.drain(len(self.batches))
        sim = self.runner.sim
        return ShardResult(
            index=self.task.index,
            name=self.task.name,
            report=dataclasses.asdict(self.runner.report()),
            batches=self.batches,
            events_executed=sim.events_executed,
            wall_time_s=sim.wall_time_s,
        )


def run_shard(task: ShardTask) -> ShardResult:
    """Execute one shard start to finish (the worker-process entrypoint).

    Module-level and driven purely by the picklable task, so
    ``multiprocessing.Pool.map`` can ship it to spawn-context workers.
    """
    execution = ShardExecution(task)
    for epoch, barrier in enumerate(execution.barriers()):
        execution.advance_to(barrier, epoch)
    return execution.finish()


def make_tasks(options) -> List[ShardTask]:
    """Expand :class:`~repro.fleet.options.FleetOptions` into shard tasks.

    Each shard's seed is derived from the fleet seed and the shard's
    index *and* name, so reordering or renaming farms changes only the
    affected shards and two same-named farms at different indices still
    get independent streams.
    """
    tasks: List[ShardTask] = []
    for index, farm in enumerate(options.farms):
        name = farm.name or f"{farm.pilot}-{index}"
        tasks.append(
            ShardTask(
                index=index,
                name=name,
                pilot=farm.pilot,
                kwargs=dict(farm.kwargs),
                seed=derive_seed(options.seed, f"shard:{index}:{name}"),
                days=options.days,
                epoch_s=options.epoch_days * DAY,
            )
        )
    return tasks
