"""Sharded multi-site fleet runner.

SWAMP is a *platform* story: many farms, each with its own fog tier,
feeding one cloud.  A single :class:`~repro.core.pilot.PilotRunner`
simulates one farm; this package runs a whole fleet of them by
partitioning the scenario into per-farm shards, executing the shards in
worker processes (or in-process, for tests and small fleets), draining
each shard's fog→cloud sync traffic at epoch barriers and merging the
results deterministically.

Determinism contract: a fleet run is a pure function of
(:class:`FleetOptions`, code).  Each shard's kernel seed is derived from
the fleet seed and the shard's index+name, every shard pauses at the
same epoch barriers, and the merge orders everything by ``(epoch, shard
index)`` — so the merged report and its fingerprint are bit-identical
whether the fleet ran on one worker, four workers or in-process.
"""

from repro.fleet.options import FarmSpec, FleetOptions, parse_farm_specs
from repro.fleet.runner import FleetReport, FleetResult, run_fleet
from repro.fleet.shard import ShardResult, ShardSyncBatch, ShardTask, run_shard

__all__ = [
    "FarmSpec",
    "FleetOptions",
    "FleetReport",
    "FleetResult",
    "ShardResult",
    "ShardSyncBatch",
    "ShardTask",
    "parse_farm_specs",
    "run_fleet",
    "run_shard",
]
