"""Typed options for a fleet run."""

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional

from repro.simkernel.errors import ReproError

#: Pilot names accepted without importing the heavy builder module here.
_KNOWN_PILOTS = ("cbec", "intercrop", "guaspari", "matopiba")


class FleetError(ReproError):
    """Invalid fleet options or a shard-level failure."""


@dataclass
class FarmSpec:
    """One farm in the fleet: a pilot name plus builder overrides."""

    pilot: str
    #: Shard display name; defaults to ``{pilot}-{index}``.
    name: Optional[str] = None
    #: Extra builder kwargs for this farm (must be picklable — they cross
    #: the worker-process boundary).
    kwargs: Dict[str, Any] = dataclass_field(default_factory=dict)


def parse_farm_specs(spec: str) -> List[FarmSpec]:
    """Parse the CLI farm list: ``"matopiba:2,guaspari"`` → 3 farms.

    Each comma-separated entry is ``pilot`` or ``pilot:count``.
    """
    farms: List[FarmSpec] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        pilot, _, count_str = entry.partition(":")
        pilot = pilot.strip()
        if pilot not in _KNOWN_PILOTS:
            raise FleetError(
                f"unknown pilot {pilot!r} in farm spec; "
                f"choose from {', '.join(_KNOWN_PILOTS)}"
            )
        count = 1
        if count_str:
            try:
                count = int(count_str)
            except ValueError:
                raise FleetError(f"bad farm count {count_str!r} in {entry!r}")
            if count < 1:
                raise FleetError(f"farm count must be >= 1, got {count} in {entry!r}")
        farms.extend(FarmSpec(pilot=pilot) for _ in range(count))
    if not farms:
        raise FleetError(f"farm spec {spec!r} names no farms")
    return farms


@dataclass
class FleetOptions:
    """Everything a fleet run needs.

    ``executor`` picks how shards execute: ``"inprocess"`` interleaves
    them in this process (tests, debugging), ``"multiprocessing"`` fans
    out over a spawn-context pool of ``workers`` processes, and
    ``"auto"`` uses multiprocessing whenever ``workers > 1``.  All three
    produce bit-identical merged reports — the executor is a throughput
    knob, never a semantics knob.
    """

    farms: List[FarmSpec]
    seed: int = 0
    #: Days per shard (None = each farm's full season).
    days: Optional[float] = None
    #: Epoch barrier spacing: each shard pauses every ``epoch_days`` and
    #: its fog→cloud sync-progress delta is drained to the merge layer.
    epoch_days: float = 1.0
    workers: int = 1
    executor: str = "auto"  # "auto" | "inprocess" | "multiprocessing"
    #: Multiprocessing start method (None = "spawn", the deterministic
    #: and platform-portable choice).
    start_method: Optional[str] = None

    def validate(self) -> None:
        if not self.farms:
            raise FleetError("fleet needs at least one farm")
        if self.epoch_days <= 0:
            raise FleetError(f"epoch_days must be positive, got {self.epoch_days!r}")
        if self.workers < 1:
            raise FleetError(f"workers must be >= 1, got {self.workers!r}")
        if self.executor not in ("auto", "inprocess", "multiprocessing"):
            raise FleetError(
                f"unknown executor {self.executor!r}; choose auto, "
                "inprocess or multiprocessing"
            )
        if self.days is not None and self.days <= 0:
            raise FleetError(f"days must be positive, got {self.days!r}")
