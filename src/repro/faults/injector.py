"""The fault injector: binds a :class:`FaultPlan` to live platform objects.

The injector is registered as a ``PlatformRuntime`` service (see
``repro.core.stages.FaultInjectionStage``): the stage registers the pilot's
links, brokers, replicator and device fleet as named targets, then calls
:meth:`FaultInjector.apply` with the configured plan.  Every injection and
recovery is executed by plain scheduled events on the sim clock — never
wall time, never un-seeded randomness — so a fault scenario is exactly as
reproducible as the fault-free run it perturbs.

Telemetry: ``faults.injected`` / ``faults.recovered`` counters (labeled by
kind), a ``faults.active`` gauge, and a per-kind ``faults.recovery_time_s``
histogram measuring injection→recovery spans.
"""

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultPlan, FaultPlanError
from repro.network.link import LinkState
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator

_RECOVERY_BUCKETS = (1.0, 10.0, 60.0, 300.0, 900.0, 3600.0, 6 * 3600.0, 24 * 3600.0)


class _FogTarget:
    """Everything a fog-node crash touches: broker, sync daemon, links."""

    __slots__ = ("broker", "replicator", "addresses")

    def __init__(self, broker, replicator, addresses: List[str]) -> None:
        self.broker = broker
        self.replicator = replicator
        self.addresses = list(addresses)


class FaultInjector:
    """Executes fault plans against registered targets."""

    def __init__(self, sim: Simulator, network: Optional[Network] = None) -> None:
        self.sim = sim
        self.network = network
        self._pairs: Dict[str, Tuple[str, str]] = {}
        self._brokers: Dict[str, object] = {}
        self._replicators: Dict[str, object] = {}
        self._devices: Dict[str, object] = {}
        self._fogs: Dict[str, _FogTarget] = {}
        self._stores: Dict[str, object] = {}
        self._endpoints: Dict[str, object] = {}
        self.injected = 0
        self.recovered = 0
        self.plans_applied: List[str] = []
        # event identity -> injection sim time, while the fault is active.
        self._active: Dict[int, float] = {}
        # device id -> installed stuck-at tamper hook, while active.
        self._stuck_hooks: Dict[str, object] = {}
        registry = sim.metrics
        self._registry = registry
        self._m_injected: Dict[str, object] = {}
        self._m_recovered: Dict[str, object] = {}
        self._m_recovery: Dict[str, object] = {}
        registry.register_callback("faults.active", lambda: float(len(self._active)))

    # -- target registration -----------------------------------------------------

    def register_pair(self, alias: str, a: str, b: str) -> None:
        """Name a node pair so plans can say e.g. ``"wan"`` for the backhaul."""
        self._pairs[alias] = (a, b)

    def register_broker(self, alias: str, broker) -> None:
        self._brokers[alias] = broker

    def register_replicator(self, alias: str, replicator) -> None:
        self._replicators[alias] = replicator

    def register_device(self, device) -> None:
        self._devices[device.config.device_id] = device

    def register_fog(self, alias: str, broker, replicator, addresses: List[str]) -> None:
        self._fogs[alias] = _FogTarget(broker, replicator, addresses)

    def register_store(self, alias: str, durability) -> None:
        """Name a :class:`~repro.store.durable.DurabilityService` for
        ``disk_*`` / ``fsync_lost`` / ``process_kill`` faults."""
        self._stores[alias] = durability

    def register_endpoint(self, alias: str, endpoint) -> None:
        """Name a delivery :class:`SimulatedEndpoint` for ``endpoint_outage``."""
        self._endpoints[alias] = endpoint

    # -- plan execution -----------------------------------------------------------

    def apply(self, plan: FaultPlan) -> None:
        """Validate ``plan`` against the registered targets and schedule it."""
        plan.validate()
        for event in plan.sorted_events():
            self._check_target(event)
        for event in plan.sorted_events():
            self.sim.schedule_at(
                event.at_s, self._inject, (event,), label=f"fault:{event.kind}:{event.target}"
            )
            if event.recovers:
                self.sim.schedule_at(
                    event.at_s + event.duration_s,
                    self._recover,
                    (event,),
                    label=f"recover:{event.kind}:{event.target}",
                )
        self.plans_applied.append(plan.name)
        self.sim.trace.emit(
            self.sim.now, "faults", "plan applied", plan=plan.name, events=len(plan.events)
        )

    def _check_target(self, event: FaultEvent) -> None:
        """Fail at schedule time, not mid-run, when a target is unknown."""
        kind = event.kind
        if kind in ("link_partition", "radio_jam"):
            self._resolve_pair(event.target)
            if self.network is None:
                raise FaultPlanError(f"fault {kind!r} needs a network")
        elif kind == "broker_restart":
            if event.target not in self._brokers:
                raise FaultPlanError(
                    f"unknown broker {event.target!r}; registered: {sorted(self._brokers)}"
                )
        elif kind == "fog_crash":
            if event.target not in self._fogs:
                raise FaultPlanError(
                    f"unknown fog target {event.target!r}; registered: {sorted(self._fogs)}"
                )
        elif kind in ("disk_torn_write", "disk_stall", "fsync_lost", "process_kill"):
            if event.target not in self._stores:
                raise FaultPlanError(
                    f"unknown store {event.target!r}; registered: {sorted(self._stores)}"
                )
        elif kind == "endpoint_outage":
            if event.target not in self._endpoints:
                raise FaultPlanError(
                    f"unknown endpoint {event.target!r}; registered: {sorted(self._endpoints)}"
                )
        else:  # device faults
            if event.target not in self._devices:
                raise FaultPlanError(
                    f"unknown device {event.target!r}; registered: {sorted(self._devices)}"
                )

    def _resolve_pair(self, target: str) -> Tuple[str, str]:
        if "|" in target:
            a, _, b = target.partition("|")
            if not a or not b:
                raise FaultPlanError(f"bad link target {target!r}; expected 'a|b'")
            return a, b
        if target in self._pairs:
            return self._pairs[target]
        raise FaultPlanError(
            f"unknown link target {target!r}; registered aliases: {sorted(self._pairs)}"
        )

    # -- telemetry -----------------------------------------------------------

    def _counter(self, table: Dict[str, object], name: str, kind: str):
        if kind not in table:
            table[kind] = self._registry.counter(name, {"kind": kind})
        return table[kind]

    def _note_injected(self, event: FaultEvent) -> None:
        self.injected += 1
        self._counter(self._m_injected, "faults.injected", event.kind).inc()
        self._active[id(event)] = self.sim.now
        self.sim.trace.emit(
            self.sim.now, "faults", "fault injected",
            kind=event.kind, target=event.target,
        )

    def _note_recovered(self, event: FaultEvent) -> None:
        started = self._active.pop(id(event), None)
        self.recovered += 1
        self._counter(self._m_recovered, "faults.recovered", event.kind).inc()
        if started is not None:
            if event.kind not in self._m_recovery:
                self._m_recovery[event.kind] = self._registry.histogram(
                    "faults.recovery_time_s", {"kind": event.kind},
                    buckets=_RECOVERY_BUCKETS,
                )
            self._m_recovery[event.kind].observe(self.sim.now - started)
        self.sim.trace.emit(
            self.sim.now, "faults", "fault recovered",
            kind=event.kind, target=event.target,
        )

    # -- injection / recovery dispatch --------------------------------------------

    def _inject(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_inject_{event.kind}")
        handler(event)
        self._note_injected(event)
        if not event.recovers:
            # One-shot or never-healing faults stay out of the active gauge:
            # nothing in this run will ever recover them.
            self._active.pop(id(event), None)

    def _recover(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_recover_{event.kind}", None)
        if handler is not None:
            handler(event)
        self._note_recovered(event)

    # link partition --------------------------------------------------------------

    def _inject_link_partition(self, event: FaultEvent) -> None:
        a, b = self._resolve_pair(event.target)
        self.network.partition(a, b)

    def _recover_link_partition(self, event: FaultEvent) -> None:
        a, b = self._resolve_pair(event.target)
        self.network.heal(a, b)

    # radio jam -------------------------------------------------------------------

    def _inject_radio_jam(self, event: FaultEvent) -> None:
        a, b = self._resolve_pair(event.target)
        self.network.jam(a, b, loss=float(event.params.get("loss", 0.9)))

    def _recover_radio_jam(self, event: FaultEvent) -> None:
        a, b = self._resolve_pair(event.target)
        self.network.unjam(a, b)

    # broker restart --------------------------------------------------------------

    def _set_incident_links(self, address: str, state: LinkState) -> None:
        if self.network is None:
            return
        for (src, dst), link in self.network.links.items():
            if address in (src, dst):
                link.set_state(state)
        self.network._routes.clear()

    def _inject_broker_restart(self, event: FaultEvent) -> None:
        broker = self._brokers[event.target]
        broker.restart()
        if event.recovers:
            # An outage window: the broker host is unreachable until recovery.
            self._set_incident_links(broker.address, LinkState.DOWN)

    def _recover_broker_restart(self, event: FaultEvent) -> None:
        broker = self._brokers[event.target]
        self._set_incident_links(broker.address, LinkState.UP)

    # fog crash -------------------------------------------------------------------

    def _inject_fog_crash(self, event: FaultEvent) -> None:
        fog = self._fogs[event.target]
        if fog.broker is not None:
            fog.broker.restart()
        if fog.replicator is not None:
            fog.replicator.crash()
        if event.recovers:
            for address in fog.addresses:
                self._set_incident_links(address, LinkState.DOWN)

    def _recover_fog_crash(self, event: FaultEvent) -> None:
        fog = self._fogs[event.target]
        for address in fog.addresses:
            self._set_incident_links(address, LinkState.UP)
        if fog.replicator is not None:
            fog.replicator.restart()

    # sensor dropout --------------------------------------------------------------

    def _inject_sensor_dropout(self, event: FaultEvent) -> None:
        self._devices[event.target].failed = True

    def _recover_sensor_dropout(self, event: FaultEvent) -> None:
        self._devices[event.target].failed = False

    # sensor stuck-at -------------------------------------------------------------

    def _inject_sensor_stuck(self, event: FaultEvent) -> None:
        device = self._devices[event.target]
        state: Dict[str, dict] = {}

        def hook(measures):
            # Freeze at the first post-fault reading; timestamps stay live
            # because the device stamps ``ts`` after tamper hooks run —
            # exactly the hard-to-detect failure mode of a fouled probe.
            if "frozen" not in state:
                state["frozen"] = dict(measures)
            return dict(state["frozen"])

        self._stuck_hooks[event.target] = hook
        device.tamper_hooks.append(hook)

    def _recover_sensor_stuck(self, event: FaultEvent) -> None:
        device = self._devices[event.target]
        hook = self._stuck_hooks.pop(event.target, None)
        if hook is not None and hook in device.tamper_hooks:
            device.tamper_hooks.remove(hook)

    # battery brownout ------------------------------------------------------------

    def _inject_battery_brownout(self, event: FaultEvent) -> None:
        device = self._devices[event.target]
        fraction = float(event.params.get("fraction", 0.5))
        fraction = min(max(fraction, 0.0), 1.0)
        device.battery.draw(fraction * device.battery.remaining_j, "brownout")

    # storage faults --------------------------------------------------------------

    def _inject_disk_torn_write(self, event: FaultEvent) -> None:
        durability = self._stores[event.target]
        durability.store.faults.arm_torn_write(
            float(event.params.get("fraction", 0.5))
        )

    def _inject_disk_stall(self, event: FaultEvent) -> None:
        self._stores[event.target].store.faults.stalled = True

    def _recover_disk_stall(self, event: FaultEvent) -> None:
        self._stores[event.target].store.faults.stalled = False

    def _inject_fsync_lost(self, event: FaultEvent) -> None:
        self._stores[event.target].store.faults.fsync_lost = True

    def _recover_fsync_lost(self, event: FaultEvent) -> None:
        self._stores[event.target].store.faults.fsync_lost = False

    def _inject_process_kill(self, event: FaultEvent) -> None:
        durability = self._stores[event.target]
        durability.crash_and_recover(
            int(event.params.get("surviving_tail_bytes", 0))
        )

    # endpoint outage --------------------------------------------------------------

    def _inject_endpoint_outage(self, event: FaultEvent) -> None:
        self._endpoints[event.target].down = True

    def _recover_endpoint_outage(self, event: FaultEvent) -> None:
        self._endpoints[event.target].down = False

    # -- inspection -----------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)
