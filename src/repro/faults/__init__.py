"""Deterministic fault injection for SWAMP pilots.

``plan`` holds the declarative schedule format (:class:`FaultPlan`,
:class:`FaultEvent`); ``injector`` executes plans against a live pilot;
``chaos`` composes seeded random campaigns and audits platform
invariants after each run (E15).
"""

from repro.faults.chaos import (
    ChaosPlanGenerator,
    ChaosRunResult,
    ChaosTargets,
    InvariantResult,
    check_invariants,
    check_storage_invariants,
    run_chaos,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan, FaultPlanError

__all__ = [
    "FAULT_KINDS",
    "ChaosPlanGenerator",
    "ChaosRunResult",
    "ChaosTargets",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "InvariantResult",
    "check_invariants",
    "check_storage_invariants",
    "run_chaos",
]
