"""Deterministic fault injection for SWAMP pilots.

``plan`` holds the declarative schedule format (:class:`FaultPlan`,
:class:`FaultEvent`); ``injector`` executes plans against a live pilot.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan, FaultPlanError

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
]
