"""Declarative fault plans.

A :class:`FaultPlan` is a named, serializable schedule of typed fault
events.  Plans are plain data — they name *what* goes wrong, *where* and
*when*; the :class:`~repro.faults.injector.FaultInjector` binds targets to
live platform objects and executes the schedule on the sim clock.  Keeping
the two apart means one JSON file can drive any pilot or benchmark
(``python -m repro.cli run guaspari --faults plan.json``) and two runs of
the same plan with the same seed are bit-identical.

Fault kinds
-----------

================== ============================= ==========================
kind               target                        semantics
================== ============================= ==========================
``link_partition`` link alias or ``"a|b"`` pair  both directions DOWN, then
                                                 healed after ``duration_s``
``radio_jam``      link alias or ``"a|b"`` pair  JAMMED with ``loss`` extra
                                                 corruption, then unjammed
``broker_restart`` broker alias (``"broker"``)   all sessions/QoS state lost;
                                                 with ``duration_s`` the
                                                 broker is also unreachable
                                                 for the outage window
``fog_crash``      fog alias (``"fog"``)         broker restart + replicator
                                                 sync daemon killed + node
                                                 links DOWN; restart re-arms
                                                 the sync loop, backlog kept
``sensor_dropout`` device id                     device stops reporting, then
                                                 resumes after ``duration_s``
``sensor_stuck``   device id                     reported measures freeze at
                                                 their first post-fault value
``battery_brownout`` device id                   one-shot: drains ``fraction``
                                                 of the remaining charge
``disk_torn_write`` store alias (``"store"``)    one-shot: the next store
                                                 append lands partially
                                                 (``fraction`` of its bytes)
``disk_stall``     store alias                   fsync barriers defer (no
                                                 data durable) until recovery
``fsync_lost``     store alias                   fsync barriers *fail*; the
                                                 durable watermark must not
                                                 advance (fsyncgate rule)
``process_kill``   store alias                   one-shot: history+store die
                                                 mid-flush keeping
                                                 ``surviving_tail_bytes`` of
                                                 the volatile tail, then
                                                 recover from disk
``endpoint_outage`` endpoint alias               delivery endpoint times out
                                                 every attempt, then heals
================== ============================= ==========================

``duration_s`` of ``None`` means the fault never recovers inside the run
(or, for one-shot kinds, that there is nothing to recover).
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.simkernel.errors import ReproError

FAULT_KINDS = (
    "link_partition",
    "radio_jam",
    "broker_restart",
    "fog_crash",
    "sensor_dropout",
    "sensor_stuck",
    "battery_brownout",
    "disk_torn_write",
    "disk_stall",
    "fsync_lost",
    "process_kill",
    "endpoint_outage",
)

# Kinds whose injection is instantaneous and has no paired recovery action.
ONE_SHOT_KINDS = ("battery_brownout", "disk_torn_write", "process_kill")


class FaultPlanError(ReproError, ValueError):
    """A plan failed validation (unknown kind, bad times, ...)."""


@dataclass
class FaultEvent:
    """One scheduled fault: inject at ``at_s``, recover ``duration_s`` later."""

    kind: str
    target: str
    at_s: float
    duration_s: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; choose from {', '.join(FAULT_KINDS)}"
            )
        if not self.target:
            raise FaultPlanError(f"fault {self.kind!r} needs a target")
        if self.at_s < 0:
            raise FaultPlanError(f"fault {self.kind!r} at_s must be >= 0, got {self.at_s!r}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise FaultPlanError(
                f"fault {self.kind!r} duration_s must be positive or omitted, "
                f"got {self.duration_s!r}"
            )
        if self.duration_s is not None and self.kind in ONE_SHOT_KINDS:
            raise FaultPlanError(f"fault {self.kind!r} is one-shot; drop duration_s")

    @property
    def recovers(self) -> bool:
        return self.duration_s is not None and self.kind not in ONE_SHOT_KINDS

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "target": self.target, "at_s": self.at_s}
        if self.duration_s is not None:
            data["duration_s"] = self.duration_s
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        unknown = set(data) - {"kind", "target", "at_s", "duration_s", "params"}
        if unknown:
            raise FaultPlanError(f"unknown fault event fields: {sorted(unknown)}")
        try:
            event = cls(
                kind=str(data["kind"]),
                target=str(data["target"]),
                at_s=float(data["at_s"]),
                duration_s=(
                    float(data["duration_s"]) if data.get("duration_s") is not None else None
                ),
                params=dict(data.get("params") or {}),
            )
        except KeyError as exc:
            raise FaultPlanError(f"fault event missing required field {exc.args[0]!r}")
        event.validate()
        return event


@dataclass
class FaultPlan:
    """A named schedule of fault events."""

    name: str = "unnamed"
    events: List[FaultEvent] = field(default_factory=list)

    def add(
        self,
        kind: str,
        target: str,
        at_s: float,
        duration_s: Optional[float] = None,
        **params: Any,
    ) -> "FaultPlan":
        """Append an event (chainable builder used by benchmarks/tests)."""
        event = FaultEvent(kind, target, at_s, duration_s, dict(params))
        event.validate()
        self.events.append(event)
        return self

    def validate(self) -> None:
        for event in self.events:
            event.validate()

    def sorted_events(self) -> List[FaultEvent]:
        """Events in injection order (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.at_s)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data).__name__}")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise FaultPlanError("fault plan 'events' must be a list")
        return cls(
            name=str(data.get("name", "unnamed")),
            events=[FaultEvent.from_dict(item) for item in events],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
