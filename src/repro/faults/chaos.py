"""Seeded chaos: random fault compositions plus platform invariants (E15).

The :class:`ChaosPlanGenerator` composes the typed fault events from
:mod:`repro.faults.plan` into randomized-but-valid campaigns: every plan
is drawn from a plain ``random.Random(seed)`` *before* the simulation
starts, so the same seed always yields the same plan, the same run and —
because the injector executes plans on the sim clock — the same final
platform state, bit for bit.

A generated plan is not uniform noise.  The generator enforces the
structural constraints that make the post-run invariants decidable:

* one **anchor outage** per plan — a WAN partition or a fog-node crash —
  long enough to cover at least one scheduler decision time, so every
  campaign exercises the degraded-mode story (breaker opens, the fog
  keeps irrigating from last-known-good context, reconciliation on heal);
* every window ends by ``latest_end_fraction`` of the horizon, so
  recoveries (and the post-heal resync) always land inside the run;
* same-target windows never overlap (the injector's recover actions
  assume exclusive ownership of a link pair / device / replicator);
* at most one infrastructure event (fog crash or broker restart) per
  plan — their recovery paths would otherwise fight over the same
  replicator and session state;
* at least one soil probe is *protected* from sensor faults so the
  decision-continuity invariant ("the scheduler keeps deciding") is
  well-defined even under maximal sensor chaos.

:func:`check_invariants` then audits a finished runner against the plan:
termination, fault accounting (injected == recovered + still-active ==
plan size), supervision health (nothing stuck restarting, replicator
alive, uplink breaker not latched open), decision continuity through
every anchor window, and bounded sync backlog.  ``benchmarks/
bench_chaos_soak.py`` drives this across many seeds; ``--smoke`` is the
CI gate.

This module deliberately imports nothing from :mod:`repro.core` at module
level (core's stages import :mod:`repro.faults`); the pilot-builder
helper resolves core lazily.
"""

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.simkernel.clock import DAY, HOUR

__all__ = [
    "ChaosPlanGenerator",
    "ChaosRunResult",
    "ChaosTargets",
    "InvariantResult",
    "build_chaos_runner",
    "check_invariants",
    "check_storage_invariants",
    "degraded_mode_scenario_plan",
    "run_chaos",
    "standard_targets",
]


# -- targets -----------------------------------------------------------------


@dataclass
class ChaosTargets:
    """The injector aliases a generated plan may aim at.

    ``protected_devices`` are excluded from sensor faults so at least one
    probe keeps feeding the context broker — without it, "irrigation
    continues under chaos" would not be a checkable claim.
    """

    wan_pairs: Tuple[str, ...] = ("wan",)
    fogs: Tuple[str, ...] = ("fog",)
    brokers: Tuple[str, ...] = ("broker",)
    devices: Tuple[str, ...] = ()
    protected_devices: Tuple[str, ...] = ()
    # Storage/delivery targets default to empty: with no store or endpoint
    # registered the generator's candidate pool — and therefore the RNG
    # draw sequence of every pinned seed — is unchanged.
    stores: Tuple[str, ...] = ()
    endpoints: Tuple[str, ...] = ()

    @property
    def faultable_devices(self) -> Tuple[str, ...]:
        protected = set(self.protected_devices)
        return tuple(d for d in self.devices if d not in protected)


def standard_targets(farm: str = "chaosfarm", rows: int = 2, cols: int = 2) -> ChaosTargets:
    """Targets matching the pilot :func:`build_chaos_runner` assembles.

    Device ids follow the fleet stage's naming; the first probe is
    protected so every zone-0 decision input survives the campaign.
    """
    probes = tuple(
        f"{farm}-probe-{row}-{col}" for row in range(rows) for col in range(cols)
    )
    return ChaosTargets(devices=probes, protected_devices=probes[:1])


# -- plan generation ---------------------------------------------------------


class ChaosPlanGenerator:
    """Draw seeded random fault campaigns satisfying the E15 constraints."""

    #: (kind, weight) pool for the non-anchor events.
    EXTRA_KINDS: Tuple[Tuple[str, int], ...] = (
        ("link_partition", 2),
        ("radio_jam", 2),
        ("broker_restart", 1),
        ("sensor_dropout", 3),
        ("sensor_stuck", 2),
        ("battery_brownout", 2),
        ("disk_torn_write", 2),
        ("disk_stall", 2),
        ("fsync_lost", 2),
        ("process_kill", 1),
        ("endpoint_outage", 2),
    )

    def __init__(
        self,
        seed: int,
        targets: Optional[ChaosTargets] = None,
        horizon_s: float = 6 * DAY,
        min_events: int = 3,
        max_events: int = 7,
        latest_end_fraction: float = 0.85,
        cycle_interval_s: float = DAY,
    ) -> None:
        if max_events < min_events:
            raise ValueError("max_events must be >= min_events")
        self.seed = seed
        self.targets = targets or standard_targets()
        self.horizon_s = horizon_s
        self.min_events = min_events
        self.max_events = max_events
        self.latest_end_s = latest_end_fraction * horizon_s
        self.cycle_interval_s = cycle_interval_s
        # Plain stdlib RNG, seeded once: generation happens before the sim
        # exists, so it must not (and cannot) touch the kernel's streams.
        self._rng = random.Random(seed)

    def generate(self, name: Optional[str] = None) -> FaultPlan:
        rng = self._rng
        plan = FaultPlan(name=name or f"chaos-{self.seed}")
        busy: Dict[str, List[Tuple[float, float]]] = {}
        infra_used = self._add_anchor(plan, busy)

        extras = rng.randint(self.min_events, self.max_events) - 1
        for _ in range(extras):
            kind = self._pick_kind(infra_used)
            if kind is None:
                break
            if self._add_event(plan, busy, kind):
                if kind in ("fog_crash", "broker_restart"):
                    infra_used = True
        plan.events.sort(key=lambda e: (e.at_s, e.kind, e.target))
        plan.validate()
        return plan

    # The anchor is the campaign's backbone: a cloud-facing outage wide
    # enough to contain a scheduler cycle, forcing the degraded-mode path.
    def _add_anchor(self, plan: FaultPlan, busy) -> bool:
        rng = self._rng
        is_crash = bool(self.targets.fogs) and rng.random() < 0.5
        duration = self.cycle_interval_s * rng.uniform(1.05, 1.6)
        latest_start = self.latest_end_s - duration
        start = rng.uniform(min(0.1 * self.horizon_s, latest_start), latest_start)
        if is_crash:
            target = rng.choice(self.targets.fogs)
            plan.add("fog_crash", target, start, duration)
        else:
            target = rng.choice(self.targets.wan_pairs)
            plan.add("link_partition", target, start, duration)
        busy.setdefault(target, []).append((start, start + duration))
        return is_crash

    def _pick_kind(self, infra_used: bool) -> Optional[str]:
        pool: List[str] = []
        for kind, weight in self.EXTRA_KINDS:
            if kind in ("fog_crash", "broker_restart") and infra_used:
                continue
            if kind == "fog_crash" and not self.targets.fogs:
                continue
            if kind == "broker_restart" and not self.targets.brokers:
                continue
            if kind in ("link_partition", "radio_jam") and not self.targets.wan_pairs:
                continue
            if kind.startswith(("sensor_", "battery_")) and not self.targets.faultable_devices:
                continue
            if kind in ("disk_torn_write", "disk_stall", "fsync_lost", "process_kill") \
                    and not self.targets.stores:
                continue
            if kind == "endpoint_outage" and not self.targets.endpoints:
                continue
            pool.extend([kind] * weight)
        if not pool:
            return None
        return self._rng.choice(pool)

    def _add_event(self, plan: FaultPlan, busy, kind: str) -> bool:
        rng = self._rng
        if kind in ("link_partition", "radio_jam"):
            target = rng.choice(self.targets.wan_pairs)
            duration = rng.uniform(1.0, 6.0) * HOUR
        elif kind == "broker_restart":
            target = rng.choice(self.targets.brokers)
            duration = rng.uniform(0.5, 2.0) * HOUR
        elif kind == "fog_crash":
            target = rng.choice(self.targets.fogs)
            duration = rng.uniform(2.0, 8.0) * HOUR
        elif kind == "battery_brownout":
            target = rng.choice(self.targets.faultable_devices)
            at = rng.uniform(600.0, self.latest_end_s)
            plan.add(kind, target, at, fraction=round(rng.uniform(0.2, 0.6), 3))
            return True
        elif kind == "disk_torn_write":
            target = rng.choice(self.targets.stores)
            at = rng.uniform(600.0, self.latest_end_s)
            plan.add(kind, target, at, fraction=round(rng.uniform(0.1, 0.9), 3))
            return True
        elif kind == "process_kill":
            target = rng.choice(self.targets.stores)
            at = rng.uniform(600.0, self.latest_end_s)
            plan.add(kind, target, at, surviving_tail_bytes=rng.randint(0, 64))
            return True
        elif kind in ("disk_stall", "fsync_lost"):
            target = rng.choice(self.targets.stores)
            duration = rng.uniform(1.0, 6.0) * HOUR
        elif kind == "endpoint_outage":
            target = rng.choice(self.targets.endpoints)
            duration = rng.uniform(1.0, 6.0) * HOUR
        else:  # sensor_dropout / sensor_stuck
            target = rng.choice(self.targets.faultable_devices)
            duration = rng.uniform(2.0, 12.0) * HOUR
        window = self._place(busy, target, duration)
        if window is None:
            return False
        if kind == "radio_jam":
            plan.add(kind, target, window[0], duration, loss=round(rng.uniform(0.3, 0.9), 3))
        else:
            plan.add(kind, target, window[0], duration)
        return True

    def _place(self, busy, target: str, duration: float, attempts: int = 6):
        """Find a same-target-exclusive window, or None after a few tries."""
        rng = self._rng
        latest_start = self.latest_end_s - duration
        if latest_start <= 600.0:
            return None
        taken = busy.setdefault(target, [])
        for _ in range(attempts):
            start = rng.uniform(600.0, latest_start)
            end = start + duration
            if all(end <= s or start >= e for s, e in taken):
                taken.append((start, end))
                return (start, end)
        return None


# -- canonical degraded-mode scenario ---------------------------------------


def degraded_mode_scenario_plan(season_days: int = 6) -> FaultPlan:
    """The pinned cloud-partition → degraded-mode → reconcile scenario.

    A fog crash opens at 22:00 of day 0 and heals midway through day 2,
    so the day-1 and day-2 06:00 decisions run on context that is 8 h /
    32 h old — past the normal 6 h staleness bound (an unsupervised
    scheduler skips them) but inside the degraded-mode bound (a
    supervised one keeps irrigating from last-known-good and journals).
    """
    crash_at = 22.0 * HOUR
    heal_after = 2 * DAY  # heals at t = 70 h, well before 0.85 × horizon
    if crash_at + heal_after > 0.85 * season_days * DAY:
        raise ValueError("season too short for the degraded-mode scenario")
    return FaultPlan(name="degraded-mode-scenario").add(
        "fog_crash", "fog", crash_at, heal_after
    )


# -- pilot assembly ----------------------------------------------------------


def build_chaos_runner(
    plan: FaultPlan,
    seed: int = 0,
    season_days: int = 6,
    rows: int = 2,
    cols: int = 2,
    farm: str = "chaosfarm",
    supervised: bool = True,
    tracing=None,
    profile: bool = False,
):
    """A small fog pilot under ``plan``; ``supervised=False`` is the naive
    baseline arm (no resilience layer at all)."""
    # Lazy core import: repro.core.stages imports repro.faults.
    from repro.core.deployment import DeploymentKind
    from repro.core.pilot import PilotConfig, PilotRunner
    from repro.physics.crop import SOYBEAN
    from repro.physics.soil import LOAM
    from repro.physics.weather import BARREIRAS_MATOPIBA
    from repro.resilience import ResilienceConfig

    return PilotRunner(PilotConfig(
        name=f"chaos-{plan.name}",
        farm=farm,
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=rows, cols=cols,
        season_days=season_days,
        start_day_of_year=150,
        initial_theta=0.22,
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        seed=seed,
        fault_plan=plan,
        resilience=ResilienceConfig() if supervised else None,
        tracing=tracing,
        profile=profile,
    ))


# -- invariants --------------------------------------------------------------


@dataclass
class InvariantResult:
    name: str
    ok: bool
    detail: str = ""


def _anchor_windows(plan: FaultPlan, cycle_interval_s: float) -> List[Tuple[float, float]]:
    return [
        (e.at_s, e.at_s + e.duration_s)
        for e in plan.events
        if e.kind in ("link_partition", "fog_crash")
        and e.duration_s is not None
        and e.duration_s >= cycle_interval_s
    ]


def check_invariants(runner, plan: FaultPlan, supervised: bool = True) -> List[InvariantResult]:
    """Audit a finished chaos run against its plan."""
    results: List[InvariantResult] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        results.append(InvariantResult(name, bool(ok), detail))

    horizon = runner.config.effective_season_days * DAY
    check("terminated", runner.sim.now >= horizon,
          f"now={runner.sim.now} horizon={horizon}")

    injector = runner.fault_injector
    recovering = sum(1 for e in plan.events if e.recovers)
    check("all faults injected", injector.injected == len(plan.events),
          f"injected={injector.injected} planned={len(plan.events)}")
    check("fault accounting balances",
          injector.recovered == recovering and injector.active_count == 0,
          f"recovered={injector.recovered}/{recovering} active={injector.active_count}")

    scheduler = runner.scheduler
    expected_cycles = int((runner.sim.now - scheduler.first_cycle_at_s)
                          // scheduler.cycle_interval_s) + 1
    check("decision loop never stalled", scheduler.stats.cycles == expected_cycles,
          f"cycles={scheduler.stats.cycles} expected={expected_cycles}")

    replicator = runner.replicator
    check("replicator alive at end", replicator is not None and replicator.running)
    if replicator is not None:
        check("sync backlog bounded", replicator.backlog_depth <= 2 * replicator.batch_size,
              f"backlog={replicator.backlog_depth}")

    if supervised:
        states = runner.supervisor.states() if runner.supervisor is not None else {}
        stuck = {n: s for n, s in states.items() if s in ("restarting", "failed")}
        check("no service stuck restarting", runner.supervisor is not None and not stuck,
              f"states={states}")
        breaker = runner.uplink_breaker
        check("uplink breaker not latched open",
              breaker is not None and breaker.state.value != "open",
              f"state={breaker.state.value if breaker else 'missing'}")
        decided_at = [entry["t"] for entry in scheduler.decision_log]
        for start, end in _anchor_windows(plan, scheduler.cycle_interval_s):
            inside = [t for t in decided_at if start <= t <= end]
            check("irrigation continues through outage", bool(inside),
                  f"window=({start:.0f},{end:.0f}) decisions={len(inside)}")

    results.extend(check_storage_invariants(runner))
    return results


def check_storage_invariants(runner) -> List[InvariantResult]:
    """Durability and delivery audits, for runners that opted in.

    A runner without ``durability``/``delivery`` attached passes
    trivially (no results) — these are the invariants the storage fault
    kinds attack, so they are only decidable when the subsystems exist.

    * **zero committed-record loss**: no recovery ever surfaced fewer
      records than the store had committed (`lost_committed == 0`), and
      every recovery produced a strict prefix of the accepted sample
      sequence;
    * **notification conservation**: every accepted notification is
      delivered, dead-lettered or still visibly pending — never silently
      dropped — regardless of outages, breaker state and replays;
    * **compaction boundary** (when columnar compaction is attached):
      every record ever drained from the WAL is in exactly one retained
      chunk or accounted as a retention drop (none lost), and no record
      is reachable from both a chunk and a WAL segment (none served
      twice).
    """
    results: List[InvariantResult] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        results.append(InvariantResult(name, bool(ok), detail))

    durability = getattr(runner, "durability", None)
    if durability is not None:
        check("no committed record lost", durability.lost_committed == 0,
              f"lost={durability.lost_committed} "
              f"recoveries={durability.recoveries}")
        check("recovery prefix-consistent", durability.prefix_consistent,
              f"recoveries={durability.recoveries}")
        compaction = getattr(durability, "compaction", None)
        if compaction is not None:
            audit = compaction.audit()
            check("no record lost across WAL→chunk boundary",
                  audit["boundary_consistent"],
                  f"retained={audit['retained_records']} "
                  f"dropped={audit['dropped_records']} "
                  f"wal_base_seq={audit['wal_base_seq']}")
            check("no record served twice across WAL→chunk boundary",
                  audit["overlap_chunks"] == 0
                  and audit["overlap_segments"] == 0,
                  f"overlap_chunks={audit['overlap_chunks']} "
                  f"overlap_segments={audit['overlap_segments']}")

    delivery = getattr(runner, "delivery", None)
    if delivery is not None:
        audit = delivery.audit()
        check("accepted notifications conserved", audit["conserved"],
              f"accepted={audit['accepted']} delivered={audit['delivered']} "
              f"dead={audit['dead']} pending={audit['pending']}")

    return results


# -- one-call harness --------------------------------------------------------


@dataclass
class ChaosRunResult:
    seed: int
    plan: FaultPlan
    report: Any
    invariants: List[InvariantResult] = field(default_factory=list)
    fingerprint: str = ""
    # The finished PilotRunner, for post-run inspection (trace export,
    # metrics snapshots).  Excluded from the fingerprint.
    runner: Any = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.invariants)

    def failures(self) -> List[InvariantResult]:
        return [r for r in self.invariants if not r.ok]


def _fingerprint(runner, plan: FaultPlan, report) -> str:
    """A stable digest of everything the run produced.

    Two invocations with the same seed must produce the same digest —
    the bit-identity contract the soak benchmark pins.
    """
    from dataclasses import asdict

    payload = {
        "plan": plan.to_dict(),
        "report": asdict(report),
        "faults": {
            "injected": runner.fault_injector.injected,
            "recovered": runner.fault_injector.recovered,
        },
        "decisions": runner.scheduler.decision_log,
        "supervisor": runner.supervisor.states() if runner.supervisor else None,
        "restarts": runner.supervisor.total_restarts if runner.supervisor else 0,
        "breaker_opens": runner.uplink_breaker.opens if runner.uplink_breaker else 0,
        "degraded_episodes": (
            runner.degraded_mode.episodes if runner.degraded_mode else 0
        ),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_chaos(
    seed: int,
    targets: Optional[ChaosTargets] = None,
    season_days: int = 6,
    rows: int = 2,
    cols: int = 2,
    supervised: bool = True,
    plan: Optional[FaultPlan] = None,
    tracing=None,
    profile: bool = False,
    **generator_kwargs: Any,
) -> ChaosRunResult:
    """Generate (or accept) a plan, run it, audit it, fingerprint it."""
    if plan is None:
        generator = ChaosPlanGenerator(
            seed,
            targets=targets or standard_targets(rows=rows, cols=cols),
            horizon_s=season_days * DAY,
            **generator_kwargs,
        )
        plan = generator.generate()
    runner = build_chaos_runner(
        plan, seed=seed, season_days=season_days, rows=rows, cols=cols,
        supervised=supervised, tracing=tracing, profile=profile,
    )
    report = runner.run_season()
    invariants = check_invariants(runner, plan, supervised=supervised)
    return ChaosRunResult(
        seed=seed,
        plan=plan,
        report=report,
        invariants=invariants,
        fingerprint=_fingerprint(runner, plan, report),
        runner=runner,
    )
