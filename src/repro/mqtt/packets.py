"""MQTT control packets.

Packets travel as structured objects on the simulated network; ``wire_size``
approximates the MQTT 3.1.1 encoding so that bandwidth, energy and DoS
backlog computations are realistic without bit-level serialization.
"""

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class ConnectReturnCode(enum.IntEnum):
    ACCEPTED = 0
    UNACCEPTABLE_PROTOCOL = 1
    IDENTIFIER_REJECTED = 2
    SERVER_UNAVAILABLE = 3
    BAD_CREDENTIALS = 4
    NOT_AUTHORIZED = 5


_FIXED_HEADER = 2
_PACKET_ID_BYTES = 2


def _string_size(s: Optional[str]) -> int:
    return 2 + len(s.encode("utf-8")) if s else 0


@dataclass
class MqttPacket:
    """Base class; subclasses define their variable-header/payload size."""

    def wire_size(self) -> int:
        return _FIXED_HEADER + self._body_size()

    def _body_size(self) -> int:
        return 0


@dataclass
class Connect(MqttPacket):
    client_id: str
    clean_session: bool = True
    keepalive_s: float = 60.0
    username: Optional[str] = None
    password: Optional[str] = None
    will_topic: Optional[str] = None
    will_payload: bytes = b""
    will_qos: int = 0
    will_retain: bool = False

    def _body_size(self) -> int:
        size = 10 + _string_size(self.client_id)
        size += _string_size(self.username) + _string_size(self.password)
        if self.will_topic:
            size += _string_size(self.will_topic) + 2 + len(self.will_payload)
        return size


@dataclass
class ConnAck(MqttPacket):
    return_code: ConnectReturnCode = ConnectReturnCode.ACCEPTED
    session_present: bool = False

    def _body_size(self) -> int:
        return 2


@dataclass
class Publish(MqttPacket):
    topic: str
    payload: bytes = b""
    qos: int = 0
    retain: bool = False
    dup: bool = False
    packet_id: Optional[int] = None
    # Causal-trace context (a TraceContext when tracing is on).  Out-of-band
    # observability metadata: excluded from wire_size so bandwidth, energy
    # and DoS backlog sums are identical with tracing on or off.
    trace_ctx: Optional[Any] = None

    def _body_size(self) -> int:
        size = _string_size(self.topic) + len(self.payload)
        if self.qos > 0:
            size += _PACKET_ID_BYTES
        return size


@dataclass
class PubAck(MqttPacket):
    packet_id: int = 0

    def _body_size(self) -> int:
        return _PACKET_ID_BYTES


@dataclass
class PubRec(MqttPacket):
    packet_id: int = 0

    def _body_size(self) -> int:
        return _PACKET_ID_BYTES


@dataclass
class PubRel(MqttPacket):
    packet_id: int = 0

    def _body_size(self) -> int:
        return _PACKET_ID_BYTES


@dataclass
class PubComp(MqttPacket):
    packet_id: int = 0

    def _body_size(self) -> int:
        return _PACKET_ID_BYTES


@dataclass
class Subscribe(MqttPacket):
    packet_id: int = 0
    # (filter, qos) pairs
    subscriptions: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    def _body_size(self) -> int:
        return _PACKET_ID_BYTES + sum(_string_size(f) + 1 for f, _q in self.subscriptions)


@dataclass
class SubAck(MqttPacket):
    packet_id: int = 0
    # granted QoS per filter; 0x80 = failure
    return_codes: Tuple[int, ...] = field(default_factory=tuple)

    def _body_size(self) -> int:
        return _PACKET_ID_BYTES + len(self.return_codes)


@dataclass
class Unsubscribe(MqttPacket):
    packet_id: int = 0
    filters: Tuple[str, ...] = field(default_factory=tuple)

    def _body_size(self) -> int:
        return _PACKET_ID_BYTES + sum(_string_size(f) for f in self.filters)


@dataclass
class UnsubAck(MqttPacket):
    packet_id: int = 0

    def _body_size(self) -> int:
        return _PACKET_ID_BYTES


@dataclass
class PingReq(MqttPacket):
    pass


@dataclass
class PingResp(MqttPacket):
    pass


@dataclass
class Disconnect(MqttPacket):
    pass
