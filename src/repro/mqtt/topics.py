"""MQTT topic names and filters.

Implements the MQTT 3.1.1 matching rules:

* ``+`` matches exactly one level, ``#`` matches the remainder and must be
  the last level;
* filters starting with ``$`` semantics: topics beginning with ``$`` are not
  matched by filters starting with wildcards (``$SYS`` protection);
* empty levels are legal (``a//b`` has three levels).
"""

from typing import List


class TopicError(ValueError):
    """Invalid topic name or filter."""


MAX_TOPIC_BYTES = 65535


def _check_common(value: str, what: str) -> List[str]:
    if not value:
        raise TopicError(f"{what} must not be empty")
    if len(value.encode("utf-8")) > MAX_TOPIC_BYTES:
        raise TopicError(f"{what} too long")
    if "\x00" in value:
        raise TopicError(f"{what} must not contain NUL")
    return value.split("/")


def validate_topic(topic: str) -> str:
    """Validate a concrete topic name (no wildcards allowed)."""
    _check_common(topic, "topic")
    if "+" in topic or "#" in topic:
        raise TopicError(f"topic name {topic!r} must not contain wildcards")
    return topic


def validate_filter(topic_filter: str) -> str:
    """Validate a subscription filter (wildcards allowed per the spec)."""
    levels = _check_common(topic_filter, "filter")
    for i, level in enumerate(levels):
        if level == "#":
            if i != len(levels) - 1:
                raise TopicError(f"'#' must be the last level in {topic_filter!r}")
        elif "#" in level:
            raise TopicError(f"'#' must occupy a whole level in {topic_filter!r}")
        elif level != "+" and "+" in level:
            raise TopicError(f"'+' must occupy a whole level in {topic_filter!r}")
    return topic_filter


def topic_matches(topic_filter: str, topic: str) -> bool:
    """True when ``topic`` matches subscription ``topic_filter``."""
    filter_levels = topic_filter.split("/")
    topic_levels = topic.split("/")
    # Wildcard-leading filters must not match $-topics.
    if topic_levels[0].startswith("$") and filter_levels[0] in ("+", "#"):
        return False
    i = 0
    for i, flevel in enumerate(filter_levels):
        if flevel == "#":
            return True
        if i >= len(topic_levels):
            return False
        if flevel == "+":
            continue
        if flevel != topic_levels[i]:
            return False
    # 'sport/#' also matches 'sport' (spec: # includes the parent level),
    # handled above.  Here the filter is exhausted; match only if the topic
    # is too.
    return len(topic_levels) == len(filter_levels)
