"""MQTT topic names and filters.

Implements the MQTT 3.1.1 matching rules:

* ``+`` matches exactly one level, ``#`` matches the remainder and must be
  the last level;
* filters starting with ``$`` semantics: topics beginning with ``$`` are not
  matched by filters starting with wildcards (``$SYS`` protection);
* empty levels are legal (``a//b`` has three levels).
"""

from typing import Any, Dict, List, Tuple

from repro.simkernel.errors import ReproError


class TopicError(ReproError, ValueError):
    """Invalid topic name or filter."""


MAX_TOPIC_BYTES = 65535


def _check_common(value: str, what: str) -> List[str]:
    if not value:
        raise TopicError(f"{what} must not be empty")
    if len(value.encode("utf-8")) > MAX_TOPIC_BYTES:
        raise TopicError(f"{what} too long")
    if "\x00" in value:
        raise TopicError(f"{what} must not contain NUL")
    return value.split("/")


# Validation is pure and topic names repeat constantly (each device
# publishes the same handful of topics for the whole run), so remember
# known-good names.  Bounded so a pathological workload cannot grow it
# without limit; on overflow new names just take the slow path.
_VALID_TOPICS: set = set()
_VALID_TOPICS_MAX = 16384


def validate_topic(topic: str) -> str:
    """Validate a concrete topic name (no wildcards allowed)."""
    if topic in _VALID_TOPICS:
        return topic
    _check_common(topic, "topic")
    if "+" in topic or "#" in topic:
        raise TopicError(f"topic name {topic!r} must not contain wildcards")
    if len(_VALID_TOPICS) < _VALID_TOPICS_MAX:
        _VALID_TOPICS.add(topic)
    return topic


def validate_filter(topic_filter: str) -> str:
    """Validate a subscription filter (wildcards allowed per the spec)."""
    levels = _check_common(topic_filter, "filter")
    for i, level in enumerate(levels):
        if level == "#":
            if i != len(levels) - 1:
                raise TopicError(f"'#' must be the last level in {topic_filter!r}")
        elif "#" in level:
            raise TopicError(f"'#' must occupy a whole level in {topic_filter!r}")
        elif level != "+" and "+" in level:
            raise TopicError(f"'+' must occupy a whole level in {topic_filter!r}")
    return topic_filter


def topic_matches(topic_filter: str, topic: str) -> bool:
    """True when ``topic`` matches subscription ``topic_filter``."""
    filter_levels = topic_filter.split("/")
    topic_levels = topic.split("/")
    # Wildcard-leading filters must not match $-topics.
    if topic_levels[0].startswith("$") and filter_levels[0] in ("+", "#"):
        return False
    i = 0
    for i, flevel in enumerate(filter_levels):
        if flevel == "#":
            return True
        if i >= len(topic_levels):
            return False
        if flevel == "+":
            continue
        if flevel != topic_levels[i]:
            return False
    # 'sport/#' also matches 'sport' (spec: # includes the parent level),
    # handled above.  Here the filter is exhausted; match only if the topic
    # is too.
    return len(topic_levels) == len(filter_levels)


class _TrieNode:
    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode"] = {}
        # key -> value, insertion-ordered; one node per distinct filter.
        self.entries: Dict[Any, Any] = {}


class TopicTrie:
    """Topic-segment routing index over MQTT subscription filters.

    Each filter is one path through the trie (wildcard levels ``+`` and
    ``#`` are ordinary edge labels — concrete topics can never contain
    them, so there is no collision); the node at the end of the path holds
    the ``key -> value`` entries registered for that exact filter (the
    broker stores ``client_id -> granted qos``).

    :meth:`match` resolves a concrete topic against every stored filter in
    O(topic depth × branching) instead of O(filters): at each level the
    walk can only continue along the literal child, the ``+`` child and
    terminate in a ``#`` child.  Matching follows :func:`topic_matches`
    exactly, including the two spec subtleties — ``sport/#`` matches the
    parent ``sport``, and wildcard-leading filters never match ``$``
    topics.
    """

    __slots__ = ("_root", "_size", "_match_cache")

    # Concrete topics in a deployment are a small, stable set (one per
    # device endpoint), so match results are cached per topic and the
    # whole cache is dropped on any mutation.  The cap only guards
    # against adversarial unbounded topic churn (e.g. a DoS flood of
    # unique topics).
    _MATCH_CACHE_MAX = 4096

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0
        self._match_cache: Dict[str, List[Tuple[Any, Any]]] = {}

    def __len__(self) -> int:
        """Number of (filter, key) entries currently stored."""
        return self._size

    def insert(self, topic_filter: str, key: Any, value: Any = None) -> None:
        """Register ``key`` under ``topic_filter`` (validated); upserts value."""
        validate_filter(topic_filter)
        node = self._root
        for level in topic_filter.split("/"):
            node = node.children.setdefault(level, _TrieNode())
        if key not in node.entries:
            self._size += 1
        node.entries[key] = value
        self._match_cache.clear()

    def discard(self, topic_filter: str, key: Any) -> bool:
        """Remove one entry; prunes empty branches.  True when found."""
        path: List[Tuple[_TrieNode, str]] = []
        node = self._root
        for level in topic_filter.split("/"):
            child = node.children.get(level)
            if child is None:
                return False
            path.append((node, level))
            node = child
        if key not in node.entries:
            return False
        del node.entries[key]
        self._size -= 1
        self._match_cache.clear()
        for parent, level in reversed(path):
            child = parent.children[level]
            if child.entries or child.children:
                break
            del parent.children[level]
        return True

    def clear(self) -> None:
        self._root = _TrieNode()
        self._size = 0
        self._match_cache.clear()

    def match(self, topic: str) -> List[Tuple[Any, Any]]:
        """All (key, value) entries whose filter matches ``topic``.

        One pair per matching (filter, key); a key subscribed through
        several matching filters appears once per filter — callers
        aggregate (the broker takes the max granted QoS).

        Results are cached per topic until the next mutation; callers
        must treat the returned list as read-only.
        """
        cached = self._match_cache.get(topic)
        if cached is not None:
            return cached
        levels = topic.split("/")
        out: List[Tuple[Any, Any]] = []
        root = self._root
        if levels[0].startswith("$"):
            # Wildcard-leading filters must not match $-topics: skip the
            # root's '+'/'#' children entirely and walk only the literal
            # first level.
            child = root.children.get(levels[0])
            if child is not None:
                self._collect(child, levels, 1, out)
        else:
            self._collect(root, levels, 0, out)
        if len(self._match_cache) < self._MATCH_CACHE_MAX:
            self._match_cache[topic] = out
        return out

    def _collect(
        self, node: _TrieNode, levels: List[str], i: int, out: List[Tuple[Any, Any]]
    ) -> None:
        hash_child = node.children.get("#")
        if hash_child is not None:
            # '#' matches the remainder *including* the parent level.
            out.extend(hash_child.entries.items())
        if i == len(levels):
            out.extend(node.entries.items())
            return
        child = node.children.get(levels[i])
        if child is not None:
            self._collect(child, levels, i + 1, out)
        plus_child = node.children.get("+")
        if plus_child is not None:
            self._collect(plus_child, levels, i + 1, out)
