"""QoS 1/2 delivery state machines, shared by client and broker.

An :class:`Outbox` owns the sender half: it assigns packet ids, remembers
in-flight messages and retransmits (with the DUP flag) until the peer
acknowledges.  An :class:`Inbox` owns the receiver half of QoS 2:
deduplicating PUBLISHes by packet id until the PUBREL releases them.

QoS 0 never touches these classes.
"""

from typing import Callable, Dict, Optional

from repro.mqtt.packets import PubAck, PubComp, Publish, PubRec, PubRel
from repro.simkernel.simulator import Simulator


class _InFlight:
    __slots__ = ("publish", "state", "retries", "timer")

    def __init__(self, publish: Publish) -> None:
        self.publish = publish
        # qos1: 'await_puback'; qos2: 'await_pubrec' then 'await_pubcomp'
        self.state = "await_puback" if publish.qos == 1 else "await_pubrec"
        self.retries = 0
        self.timer = None


class Outbox:
    """Sender-side QoS 1/2 flows for one peer connection."""

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[object], None],
        retry_interval_s: float = 5.0,
        max_retries: int = 5,
        max_in_flight: int = 64,
    ) -> None:
        self.sim = sim
        self._send = send
        self.retry_interval_s = retry_interval_s
        self.max_retries = max_retries
        self.max_in_flight = max_in_flight
        self._next_id = 1
        self._in_flight: Dict[int, _InFlight] = {}
        self.expired = 0  # messages abandoned after max_retries
        self.completed = 0
        # Shared across every outbox on this simulator: per-session label
        # cardinality would explode (one outbox per broker session).
        self._m_retries = sim.metrics.counter("mqtt.qos_retries")
        self._m_expired = sim.metrics.counter("mqtt.qos_expired")

    def _alloc_id(self) -> int:
        # Packet ids are 16-bit and must not collide with in-flight ids.
        for _ in range(65535):
            pid = self._next_id
            self._next_id = self._next_id % 65535 + 1
            if pid not in self._in_flight:
                return pid
        raise RuntimeError("no free MQTT packet ids")

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def send_publish(self, publish: Publish) -> Optional[int]:
        """Send a QoS>0 publish; returns its packet id or None when the
        in-flight window is full (caller drops or defers)."""
        if len(self._in_flight) >= self.max_in_flight:
            return None
        pid = self._alloc_id()
        publish.packet_id = pid
        flight = _InFlight(publish)
        self._in_flight[pid] = flight
        self._send(publish)
        self._arm_timer(flight)
        return pid

    def _arm_timer(self, flight: _InFlight) -> None:
        flight.timer = self.sim.schedule(
            self.retry_interval_s, self._retry, (flight,), label="mqtt:retry"
        )

    def _retry(self, flight: _InFlight) -> None:
        pid = flight.publish.packet_id
        if pid not in self._in_flight or self._in_flight[pid] is not flight:
            return
        if flight.retries >= self.max_retries:
            del self._in_flight[pid]
            self.expired += 1
            self._m_expired.inc()
            return
        flight.retries += 1
        self._m_retries.inc()
        if flight.state in ("await_puback", "await_pubrec"):
            flight.publish.dup = True
            self._send(flight.publish)
        else:  # await_pubcomp: re-send PUBREL
            self._send(PubRel(packet_id=pid))
        self._arm_timer(flight)

    def _cancel_timer(self, flight: _InFlight) -> None:
        if flight.timer is not None:
            flight.timer.cancel()
            flight.timer = None

    def on_puback(self, packet: PubAck) -> bool:
        flight = self._in_flight.get(packet.packet_id)
        if flight is None or flight.state != "await_puback":
            return False
        self._cancel_timer(flight)
        del self._in_flight[packet.packet_id]
        self.completed += 1
        return True

    def on_pubrec(self, packet: PubRec) -> bool:
        flight = self._in_flight.get(packet.packet_id)
        if flight is None or flight.state != "await_pubrec":
            return False
        flight.state = "await_pubcomp"
        self._cancel_timer(flight)
        self._send(PubRel(packet_id=packet.packet_id))
        self._arm_timer(flight)
        return True

    def on_pubcomp(self, packet: PubComp) -> bool:
        flight = self._in_flight.get(packet.packet_id)
        if flight is None or flight.state != "await_pubcomp":
            return False
        self._cancel_timer(flight)
        del self._in_flight[packet.packet_id]
        self.completed += 1
        return True

    def clear(self) -> None:
        """Abandon every in-flight message (connection teardown).

        Abandoned flights count as expired: the peer never acknowledged
        them, so availability accounting must see them as losses rather
        than silently forgetting they existed.
        """
        abandoned = len(self._in_flight)
        for flight in self._in_flight.values():
            self._cancel_timer(flight)
        self._in_flight.clear()
        if abandoned:
            self.expired += abandoned
            self._m_expired.inc(abandoned)


class Inbox:
    """Receiver-side QoS 2 exactly-once dedup for one peer connection.

    A pending-release entry normally leaves via the PUBREL, but when the
    *sender* gives up (its flight expires after ``max_retries``) no PUBREL
    ever comes.  Entries therefore expire ``pending_release_timeout_s``
    after the last PUBLISH for that packet id — comfortably past the
    sender's give-up horizon — so the set cannot leak, and a reused packet
    id after 16-bit wrap is not falsely suppressed as a duplicate.
    Expiry is checked lazily on inbound traffic (never via scheduled
    events), so determinism is unaffected.
    """

    def __init__(
        self,
        send: Callable[[object], None],
        sim: Optional[Simulator] = None,
        pending_release_timeout_s: float = 60.0,
    ) -> None:
        self._send = send
        self.sim = sim
        self.pending_release_timeout_s = pending_release_timeout_s
        # packet id -> sim time of the most recent PUBLISH carrying it.
        self._pending_release: Dict[int, float] = {}
        self.duplicates_suppressed = 0
        self.pending_expired = 0

    def _now(self) -> float:
        return self.sim.clock.now if self.sim is not None else 0.0

    def _expire_stale(self) -> None:
        if self.sim is None or not self._pending_release:
            return
        cutoff = self.sim.clock.now - self.pending_release_timeout_s
        stale = [pid for pid, seen in self._pending_release.items() if seen <= cutoff]
        for pid in stale:
            del self._pending_release[pid]
            self.pending_expired += 1

    def on_publish_qos2(self, publish: Publish) -> bool:
        """Handle an inbound QoS 2 PUBLISH.

        Returns True when the message should be delivered to the
        application (first arrival); False for a duplicate.
        Always answers with PUBREC.
        """
        self._expire_stale()
        pid = publish.packet_id
        first = pid not in self._pending_release
        if not first:
            self.duplicates_suppressed += 1
        # (Re)stamp on duplicates too: the sender is still retrying, so the
        # entry must outlive its final attempt.
        self._pending_release[pid] = self._now()
        self._send(PubRec(packet_id=pid))
        return first

    def on_pubrel(self, packet: PubRel) -> None:
        self._expire_stale()
        self._pending_release.pop(packet.packet_id, None)
        self._send(PubComp(packet_id=packet.packet_id))

    def clear(self) -> None:
        self._pending_release.clear()
