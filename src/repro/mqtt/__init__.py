"""In-simulation MQTT implementation (3.1.1-style semantics).

The SWAMP pipeline the paper describes is *device → MQTT → IoT agent →
context broker*.  This package implements the transport leg with real
protocol semantics rather than a toy pub/sub, because several security
experiments depend on them:

* QoS 1/2 retransmission interacts with DoS-induced loss (E4);
* retained messages and wills matter for fog failover (E9);
* broker-side authentication/authorization hooks carry the OAuth tokens
  and per-farm ACLs (E10).

Clients and broker exchange MQTT control packets as payloads on the
:mod:`repro.network` substrate.
"""

from repro.mqtt.broker import MqttBroker, RoutingMismatchError
from repro.mqtt.client import MqttClient
from repro.mqtt.packets import (
    ConnAck,
    Connect,
    ConnectReturnCode,
    Disconnect,
    PingReq,
    PingResp,
    PubAck,
    PubComp,
    Publish,
    PubRec,
    PubRel,
    SubAck,
    Subscribe,
    UnsubAck,
    Unsubscribe,
)
from repro.mqtt.topics import TopicError, TopicTrie, topic_matches, validate_filter, validate_topic

__all__ = [
    "ConnAck",
    "Connect",
    "ConnectReturnCode",
    "Disconnect",
    "MqttBroker",
    "MqttClient",
    "PingReq",
    "PingResp",
    "PubAck",
    "PubComp",
    "PubRec",
    "PubRel",
    "Publish",
    "RoutingMismatchError",
    "SubAck",
    "Subscribe",
    "TopicError",
    "TopicTrie",
    "UnsubAck",
    "Unsubscribe",
    "topic_matches",
    "validate_filter",
    "validate_topic",
]
