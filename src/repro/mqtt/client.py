"""MQTT client.

Devices, IoT agents, fog services and attackers all speak MQTT through this
class.  The client owns:

* the connection state machine (CONNECT/CONNACK, keepalive pings, reconnect
  with exponential backoff);
* sender- and receiver-side QoS flows via :mod:`repro.mqtt.qos`;
* an optional secure-channel wrapper installed by
  :mod:`repro.security.crypto` (payload encryption, so wire taps see
  ciphertext only).
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.mqtt.packets import (
    ConnAck,
    Connect,
    ConnectReturnCode,
    Disconnect,
    MqttPacket,
    PingReq,
    PingResp,
    PubAck,
    PubComp,
    Publish,
    PubRec,
    PubRel,
    SubAck,
    Subscribe,
    UnsubAck,
    Unsubscribe,
)
from repro.mqtt.qos import Inbox, Outbox
from repro.mqtt.topics import topic_matches, validate_filter, validate_topic
from repro.network.node import NetworkNode
from repro.network.packet import Packet
from repro.simkernel.simulator import Simulator

MessageHandler = Callable[[str, bytes, int, bool], None]

# PINGREQ is stateless, so every keepalive tick can share one instance
# (~200k allocations per season otherwise).
_PINGREQ = PingReq()
_PINGREQ_SIZE = _PINGREQ.wire_size()


class ClientStats:
    __slots__ = ("published", "received", "connects", "connect_failures", "pings")

    def __init__(self) -> None:
        self.published = 0
        self.received = 0
        self.connects = 0
        self.connect_failures = 0
        self.pings = 0


class MqttClient(NetworkNode):
    def __init__(
        self,
        sim: Simulator,
        address: str,
        broker_address: str,
        client_id: Optional[str] = None,
        username: Optional[str] = None,
        password: Optional[str] = None,
        clean_session: bool = True,
        keepalive_s: float = 60.0,
        will: Optional[Tuple[str, bytes, int, bool]] = None,
        auto_reconnect: bool = True,
    ) -> None:
        super().__init__(address)
        self.sim = sim
        self.broker_address = broker_address
        self.client_id = client_id or address
        self.username = username
        self.password = password
        self.clean_session = clean_session
        self.keepalive_s = keepalive_s
        self.will = will
        self.auto_reconnect = auto_reconnect
        self.connected = False
        self.connecting = False
        self.stats = ClientStats()
        self.outbox = Outbox(sim, self._send_packet)
        self.inbox = Inbox(self._send_packet, sim=sim)
        self._handlers: List[Tuple[str, MessageHandler]] = []
        # topic -> tuple of matching handlers; rebuilt lazily, dropped on
        # any handler-list mutation.  Device topics are a small fixed set,
        # so nearly every delivery after warm-up is a dict hit instead of
        # a topic_matches() scan.
        self._dispatch_cache: Dict[str, Tuple[MessageHandler, ...]] = {}
        self._next_sub_id = 1
        self._pending_subscribes: Dict[int, Tuple[Tuple[str, int], ...]] = {}
        self._subscribe_timers: Dict[int, object] = {}
        self.subscribe_retry_s = 5.0
        self.granted: Dict[str, int] = {}
        self._ping_timer = None
        self._connack_timer = None
        self.reconnect_backoff_initial_s = 1.0
        self.reconnect_backoff_max_s = 60.0
        self._reconnect_backoff_s = self.reconnect_backoff_initial_s
        self._reconnect_timer = None
        # Jitter source for reconnect backoff: a dedicated per-client stream
        # so a fleet of clients dropped by the same outage does not stampede
        # the broker in lockstep — and so backoff draws never perturb any
        # other subsystem's RNG sequence.
        self._backoff_rng = sim.rng.stream(f"mqtt:{self.client_id}:backoff")
        # Fixed event labels (formatting them per schedule call shows up on
        # season-scale profiles: the ping timer alone fires ~200k times).
        self._ping_label = f"{self.client_id}:ping"
        self._connack_label = f"{self.client_id}:connack-timeout"
        self._reconnect_label = f"{self.client_id}:reconnect"
        self._sub_retry_label = f"{self.client_id}:sub-retry"
        # Liveness: consecutive PINGREQs without a PINGRESP.  Two misses
        # mean the connection is dead (the TCP-break signal a real client
        # gets for free); tear down and let auto-reconnect take over.
        self._unanswered_pings = 0
        self.max_unanswered_pings = 2
        self.on_connect: Optional[Callable[[bool], None]] = None
        self.on_disconnect: Optional[Callable[[], None]] = None
        # Payload transform hooks installed by the secure channel layer:
        # encode(topic, payload) -> (wire_payload, wire_bytes_or_None)
        self.payload_encoder: Optional[Callable[[str, bytes], Tuple[bytes, Optional[bytes]]]] = None
        self.payload_decoder: Optional[Callable[[str, bytes], Optional[bytes]]] = None

    # -- wire -----------------------------------------------------------

    def _send_packet(self, packet: MqttPacket, wire_bytes: Optional[bytes] = None) -> None:
        self.send(self.broker_address, packet, packet.wire_size(), flow="mqtt", wire_bytes=wire_bytes)

    # -- connection -----------------------------------------------------------

    def connect(self) -> None:
        """Initiate the CONNECT handshake (idempotent while in progress)."""
        if self.connected or self.connecting:
            return
        self.connecting = True
        connect = Connect(
            client_id=self.client_id,
            clean_session=self.clean_session,
            keepalive_s=self.keepalive_s,
            username=self.username,
            password=self.password,
        )
        if self.will is not None:
            connect.will_topic, connect.will_payload, connect.will_qos, connect.will_retain = self.will
        self._send_packet(connect)
        self._connack_timer = self.sim.schedule(
            10.0, self._on_connect_timeout, label=self._connack_label
        )

    def _on_connect_timeout(self) -> None:
        self._connack_timer = None
        if self.connected:
            return
        self.connecting = False
        self.stats.connect_failures += 1
        if self.auto_reconnect:
            self._schedule_reconnect()

    def _schedule_reconnect(self) -> None:
        if self._reconnect_timer is not None:
            # A reconnect is already pending.  A second trigger in the
            # same window (e.g. a stale broker RST racing the CONNACK
            # timeout) must not fork a second reconnect chain — duplicate
            # chains double-escalate the backoff (1, 4, 16, ... instead
            # of 1, 2, 4, ...) and double the connect load on a broker
            # that is already struggling.
            return
        # Exponential backoff, capped, with up to +25% jitter drawn from this
        # client's own stream (decorrelates reconnect storms after a shared
        # fault without breaking run determinism).
        delay = self._reconnect_backoff_s * (1.0 + self._backoff_rng.uniform(0.0, 0.25))
        self._reconnect_timer = self.sim.schedule(
            delay, self._reconnect_fire, label=self._reconnect_label
        )
        self._reconnect_backoff_s = min(
            self._reconnect_backoff_s * 2.0, self.reconnect_backoff_max_s
        )

    def _reconnect_fire(self) -> None:
        self._reconnect_timer = None
        self.connect()

    def disconnect(self) -> None:
        if not self.connected:
            return
        self._send_packet(Disconnect())
        self._teardown(notify=False)

    def _teardown(self, notify: bool) -> None:
        self.connected = False
        self.connecting = False
        if self._ping_timer is not None:
            self._ping_timer.cancel()
            self._ping_timer = None
        for timer in self._subscribe_timers.values():
            timer.cancel()
        self._subscribe_timers.clear()
        self.outbox.clear()
        if notify and self.on_disconnect is not None:
            self.on_disconnect()

    # -- keepalive -----------------------------------------------------------

    def _arm_ping(self) -> None:
        if self.keepalive_s <= 0:
            return
        self._ping_timer = self.sim.schedule(
            self.keepalive_s * 0.8, self._ping, label=self._ping_label
        )

    def _ping(self) -> None:
        self._ping_timer = None
        if not self.connected:
            return
        if self._unanswered_pings >= self.max_unanswered_pings:
            # Connection is dead: tear down and reconnect.
            self._teardown(notify=True)
            if self.auto_reconnect:
                self._schedule_reconnect()
            return
        self._unanswered_pings += 1
        self.stats.pings += 1
        self.send(self.broker_address, _PINGREQ, _PINGREQ_SIZE, flow="mqtt")
        self._arm_ping()

    # -- pub/sub API -----------------------------------------------------------

    def publish(self, topic: str, payload: bytes, qos: int = 0, retain: bool = False) -> bool:
        """Publish; returns False when not connected or window is full."""
        validate_topic(topic)
        if not self.connected:
            return False
        wire_bytes: Optional[bytes] = None
        if self.payload_encoder is not None:
            payload, wire_bytes = self.payload_encoder(topic, payload)
        publish = Publish(topic=topic, payload=payload, qos=qos, retain=retain)
        tracer = self.sim.tracer
        span = None
        if tracer.enabled:
            span = tracer.start_span(
                "mqtt.publish", "mqtt", topic=topic, qos=qos, client=self.client_id
            )
            if span is not None:
                # The context rides the packet object through the simulated
                # network; QoS retransmissions re-send the same object, so
                # retries stay inside the original publish's trace.
                publish.trace_ctx = span.ctx
        self.stats.published += 1
        try:
            if qos == 0:
                self._send_packet(publish, wire_bytes=wire_bytes)
                return True
            # The retransmission path re-sends through _send_packet without the
            # wire_bytes tag; acceptable because retransmissions carry the same
            # ciphertext in the real system.
            return self.outbox.send_publish(publish) is not None
        finally:
            if span is not None:
                tracer.end_span(span)

    def subscribe(self, topic_filter: str, qos: int = 0, handler: Optional[MessageHandler] = None) -> None:
        validate_filter(topic_filter)
        if handler is not None:
            self._handlers.append((topic_filter, handler))
            self._dispatch_cache.clear()
        pid = self._next_sub_id
        self._next_sub_id += 1
        subs = ((topic_filter, qos),)
        self._pending_subscribes[pid] = subs
        if self.connected:
            self._send_subscribe(pid)

    def _send_subscribe(self, pid: int) -> None:
        """(Re)send a pending SUBSCRIBE until its SUBACK arrives."""
        subs = self._pending_subscribes.get(pid)
        if subs is None or not self.connected:
            return
        self._send_packet(Subscribe(packet_id=pid, subscriptions=subs))
        self._subscribe_timers[pid] = self.sim.schedule(
            self.subscribe_retry_s, self._send_subscribe, (pid,), label=self._sub_retry_label
        )

    def add_handler(self, topic_filter: str, handler: MessageHandler) -> None:
        """Attach a handler without (re)subscribing on the wire."""
        self._handlers.append((topic_filter, handler))
        self._dispatch_cache.clear()

    def unsubscribe(self, topic_filter: str) -> None:
        self.granted.pop(topic_filter, None)
        self._handlers = [(f, h) for f, h in self._handlers if f != topic_filter]
        self._dispatch_cache.clear()
        if self.connected:
            pid = self._next_sub_id
            self._next_sub_id += 1
            self._send_packet(Unsubscribe(packet_id=pid, filters=(topic_filter,)))

    # -- inbound -----------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        mqtt_packet = packet.payload
        # Exact-class dispatch ordered by wire frequency (PUBLISH and
        # PINGRESP dominate); packet classes are never subclassed.
        kind = mqtt_packet.__class__
        if kind is Publish:
            self._on_publish(mqtt_packet)
        elif kind is PingResp:
            self._unanswered_pings = 0
        elif kind is PubAck:
            self.outbox.on_puback(mqtt_packet)
        elif kind is PubRec:
            self.outbox.on_pubrec(mqtt_packet)
        elif kind is PubRel:
            self.inbox.on_pubrel(mqtt_packet)
            pending = getattr(self, "_qos2_pending", {}).pop(mqtt_packet.packet_id, None)
            if pending is not None:
                self._dispatch(pending)
        elif kind is PubComp:
            self.outbox.on_pubcomp(mqtt_packet)
        elif kind is ConnAck:
            self._on_connack(mqtt_packet)
        elif kind is SubAck:
            self._on_suback(mqtt_packet)
        elif kind is Disconnect:
            # Server-side reset: the broker no longer knows this session
            # (restart, takeover, overload shed).  Tear down and let the
            # backoff machinery re-establish the session.
            if self.connected or self.connecting:
                if self._connack_timer is not None:
                    self._connack_timer.cancel()
                    self._connack_timer = None
                self._teardown(notify=True)
                if self.auto_reconnect:
                    self._schedule_reconnect()

    def _on_connack(self, connack: ConnAck) -> None:
        if self._connack_timer is not None:
            self._connack_timer.cancel()
            self._connack_timer = None
        self.connecting = False
        if connack.return_code is not ConnectReturnCode.ACCEPTED:
            self.stats.connect_failures += 1
            if self.on_connect is not None:
                self.on_connect(False)
            return
        self.connected = True
        self.stats.connects += 1
        self._reconnect_backoff_s = self.reconnect_backoff_initial_s
        if self._reconnect_timer is not None:
            # Connected through another path while a retry was pending
            # (e.g. an explicit connect() racing the backoff timer): the
            # stale retry would hit the broker as a session takeover of
            # ourselves.  Cancel it.
            self._reconnect_timer.cancel()
            self._reconnect_timer = None
        self._unanswered_pings = 0
        self._arm_ping()
        # A fresh (non-resumed) session has no server-side subscription
        # state: every previously granted filter must be re-subscribed.
        if not connack.session_present:
            for topic_filter, qos in sorted(self.granted.items()):
                if not any(
                    topic_filter in {f for f, _q in subs}
                    for subs in self._pending_subscribes.values()
                ):
                    pid = self._next_sub_id
                    self._next_sub_id += 1
                    self._pending_subscribes[pid] = ((topic_filter, qos),)
            self.granted = {}
        # (Re-)establish subscriptions not yet acknowledged.
        for pid in sorted(self._pending_subscribes):
            self._send_subscribe(pid)
        if self.on_connect is not None:
            self.on_connect(True)

    def _on_suback(self, suback: SubAck) -> None:
        subs = self._pending_subscribes.pop(suback.packet_id, None)
        timer = self._subscribe_timers.pop(suback.packet_id, None)
        if timer is not None:
            timer.cancel()
        if subs is None:
            return
        for (topic_filter, _requested), code in zip(subs, suback.return_codes):
            if code <= 2:
                self.granted[topic_filter] = code

    def _on_publish(self, publish: Publish) -> None:
        if publish.qos == 1:
            self._send_packet(PubAck(packet_id=publish.packet_id))
            self._dispatch(publish)
        elif publish.qos == 2:
            first = self.inbox.on_publish_qos2(publish)
            if first:
                if not hasattr(self, "_qos2_pending"):
                    self._qos2_pending = {}
                self._qos2_pending[publish.packet_id] = publish
        else:
            self._dispatch(publish)

    def _dispatch(self, publish: Publish) -> None:
        payload = publish.payload
        if self.payload_decoder is not None:
            decoded = self.payload_decoder(publish.topic, payload)
            if decoded is None:
                return  # authentication failure: drop silently, but counted upstream
            payload = decoded
        self.stats.received += 1
        topic = publish.topic
        handlers = self._dispatch_cache.get(topic)
        if handlers is None:
            handlers = tuple(
                h for f, h in self._handlers if topic_matches(f, topic)
            )
            if len(self._dispatch_cache) < 1024:
                self._dispatch_cache[topic] = handlers
        tracer = self.sim.tracer
        if tracer.enabled and publish.trace_ctx is not None:
            with tracer.span(
                "mqtt.deliver",
                "mqtt",
                parent=publish.trace_ctx,
                client=self.client_id,
                topic=topic,
            ):
                for handler in handlers:
                    handler(topic, payload, publish.qos, publish.retain)
            return
        for handler in handlers:
            handler(topic, payload, publish.qos, publish.retain)
