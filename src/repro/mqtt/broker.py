"""The MQTT broker.

One broker instance serves one deployment tier: the paper's cloud
configuration runs a single cloud broker; the fog configuration adds a local
broker on the farm that keeps operating during Internet disconnection (E9).

Security hooks:

* ``authenticator(connect) -> ConnectReturnCode`` — wired to the OAuth2
  identity manager in :mod:`repro.security.auth` (E10);
* ``authorizer(session, action, topic) -> bool`` — per-farm topic ACLs;
* every authorization failure is counted and traced, feeding the audit log.
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.mqtt.packets import (
    ConnAck,
    Connect,
    ConnectReturnCode,
    Disconnect,
    MqttPacket,
    PingReq,
    PingResp,
    PubAck,
    PubComp,
    Publish,
    PubRec,
    PubRel,
    SubAck,
    Subscribe,
    UnsubAck,
    Unsubscribe,
)
from repro.mqtt.qos import Inbox, Outbox
from repro.mqtt.topics import TopicError, TopicTrie, topic_matches, validate_filter, validate_topic
from repro.network.node import NetworkNode
from repro.network.packet import Packet
from repro.resilience.backpressure import BoundedQueue, DropPolicy, RateLimiter
from repro.simkernel.errors import ReproError
from repro.simkernel.simulator import Simulator

# PINGRESP is stateless; every keepalive answer shares one instance.
_PINGRESP = PingResp()
_PINGRESP_SIZE = _PINGRESP.wire_size()

SUBACK_FAILURE = 0x80


class RoutingMismatchError(ReproError):
    """Indexed routing diverged from the linear-scan reference.

    Only raised when ``MqttBroker.verify_routing`` is enabled (property
    tests and the CI routing smoke); production paths trust the index.
    """


class BrokerSession:
    """Server-side state for one client."""

    def __init__(self, broker: "MqttBroker", client_id: str, address: str, connect: Connect) -> None:
        self.client_id = client_id
        self.address = address
        self.clean_session = connect.clean_session
        self.username = connect.username
        self.keepalive_s = connect.keepalive_s
        self.connected = True
        self.last_seen = broker.sim.now
        self.subscriptions: Dict[str, int] = {}
        self.will: Optional[Tuple[str, bytes, int, bool]] = None
        if connect.will_topic:
            self.will = (connect.will_topic, connect.will_payload, connect.will_qos, connect.will_retain)
        self.outbox = Outbox(broker.sim, lambda pkt: broker._send_to(self, pkt))
        self.inbox = Inbox(lambda pkt: broker._send_to(self, pkt), sim=broker.sim)
        # Messages queued while a persistent session is offline.  Bounded:
        # a long partition must not grow broker memory without limit, and
        # when the cap bites the *freshest* telemetry survives
        # (oldest-first eviction, counted by ``mqtt.offline_dropped``).
        self.offline_queue = BoundedQueue(
            broker.max_offline_queue,
            DropPolicy.DROP_OLDEST,
            on_evict=broker._on_offline_evict,
        )

    def granted_qos(self, topic: str) -> Optional[int]:
        """Highest subscription QoS matching ``topic``, or None."""
        best: Optional[int] = None
        for topic_filter, qos in self.subscriptions.items():
            if topic_matches(topic_filter, topic):
                if best is None or qos > best:
                    best = qos
        return best


class BrokerStats:
    __slots__ = (
        "connects",
        "rejected_connects",
        "publishes_in",
        "publishes_out",
        "denied_publish",
        "denied_subscribe",
        "dropped_overload",
        "offline_dropped",
        "shed_backpressure",
        "session_expirations",
        "wills_published",
        "restarts",
    )

    def __init__(self) -> None:
        self.connects = 0
        self.rejected_connects = 0
        self.publishes_in = 0
        self.publishes_out = 0
        self.denied_publish = 0
        self.denied_subscribe = 0
        self.dropped_overload = 0
        self.offline_dropped = 0
        self.shed_backpressure = 0
        self.session_expirations = 0
        self.wills_published = 0
        self.restarts = 0


class MqttBroker(NetworkNode):
    """MQTT 3.1.1-style broker running on a network node."""

    def __init__(
        self,
        sim: Simulator,
        address: str,
        authenticator: Optional[Callable[[Connect], ConnectReturnCode]] = None,
        authorizer: Optional[Callable[[BrokerSession, str, str], bool]] = None,
        max_offline_queue: int = 1000,
        sweep_interval_s: float = 10.0,
        max_inflight_per_session: int = 64,
    ) -> None:
        super().__init__(address)
        self.sim = sim
        self.authenticator = authenticator
        self.authorizer = authorizer
        self.max_offline_queue = max_offline_queue
        self.max_inflight_per_session = max_inflight_per_session
        self.sessions: Dict[str, BrokerSession] = {}
        self._address_index: Dict[str, str] = {}  # network address -> client_id
        # Routing index: filter-trie entries are client_id -> granted qos.
        # Mirrors the union of every session's ``subscriptions`` dict (for
        # connected *and* offline persistent sessions — the latter still
        # route into their offline queues).
        self._routes = TopicTrie()
        # When True every publish cross-checks the trie against the linear
        # scan and raises RoutingMismatchError on divergence (tests/CI).
        self.verify_routing = False
        self.retained: Dict[str, Publish] = {}
        self.stats = BrokerStats()
        labels = {"broker": address}
        registry = sim.metrics
        self._m_connects = registry.counter("mqtt.connects", labels)
        self._m_rejected = registry.counter("mqtt.rejected_connects", labels)
        self._m_pub_in = registry.counter("mqtt.publishes_in", labels)
        self._m_pub_out = registry.counter("mqtt.publishes_out", labels)
        self._m_denied = registry.counter("mqtt.denied", labels)
        self._m_dropped = registry.counter("mqtt.dropped_overload", labels)
        self._m_offline_dropped = registry.counter("mqtt.offline_dropped", labels)
        self._m_shed = registry.counter("mqtt.backpressure_shed", labels)
        self._m_expired = registry.counter("mqtt.session_expirations", labels)
        # Candidate (filter, client) pairs the index yielded per publish;
        # with linear scan this would grow with total subscription count.
        self._m_route_candidates = registry.counter("mqtt.route_candidates", labels)
        registry.register_callback(
            "mqtt.connected_clients",
            lambda: float(sum(1 for s in self.sessions.values() if s.connected)),
            labels,
        )
        # Optional inbound admission gate (installed by the resilience
        # stage): a closed window sheds PUBLISHes before any routing work.
        self.inbound_limit: Optional[RateLimiter] = None
        self._sweep_interval_s = sweep_interval_s
        self._sweeping = False
        self._sweep_label = f"{address}:sweep"
        # Earliest instant any currently-known session could lapse.  The
        # sweep tick only pays the full session scan when the clock has
        # actually reached this bound; `last_seen` refreshes can only push
        # real deadlines *later*, so the cached bound stays conservative,
        # and (re)connects tighten it via _note_session_deadline.
        self._next_possible_expiry = float("inf")
        # Heartbeat for the resilience supervisor: a broker whose sweeper
        # stopped ticking is wedged even if its socket still answers.
        self.last_sweep_at = sim.now
        self._start_sweeper()

    # -- plumbing -----------------------------------------------------------

    def _start_sweeper(self) -> None:
        if self._sweeping:
            return
        self._sweeping = True
        self.sim.schedule(self._sweep_interval_s, self._sweep, label=self._sweep_label)

    def _on_offline_evict(self, publish: Publish) -> None:
        self.stats.offline_dropped += 1
        self._m_offline_dropped.inc()

    def _note_session_deadline(self, session: "BrokerSession") -> None:
        if session.keepalive_s:
            deadline = session.last_seen + 1.5 * session.keepalive_s
            if deadline < self._next_possible_expiry:
                self._next_possible_expiry = deadline

    def _sweep(self) -> None:
        """Expire sessions whose keepalive lapsed (publishes their will).

        The tick cadence is fixed (it doubles as the supervisor heartbeat
        and keeps expiry times on the same grid as the original
        scan-every-tick implementation); the O(n) session scan runs only
        when the cached earliest-possible deadline has been reached.  The
        small slack absorbs float rounding between ``now - last_seen >
        1.5*ka`` (the canonical expiry test) and the cached
        ``last_seen + 1.5*ka`` bound.
        """
        now = self.sim.clock.now
        self.last_sweep_at = now
        if now >= self._next_possible_expiry - 1e-6:
            next_deadline = float("inf")
            for session in list(self.sessions.values()):
                if not session.connected or not session.keepalive_s:
                    continue
                if now - session.last_seen > 1.5 * session.keepalive_s:
                    self._expire_session(session)
                else:
                    deadline = session.last_seen + 1.5 * session.keepalive_s
                    if deadline < next_deadline:
                        next_deadline = deadline
            self._next_possible_expiry = next_deadline
        self.sim.schedule(self._sweep_interval_s, self._sweep, label=self._sweep_label)

    def _expire_session(self, session: BrokerSession) -> None:
        self.stats.session_expirations += 1
        self._m_expired.inc()
        self.sim.trace.emit(
            self.sim.now, "mqtt", "session expired", broker=self.address, client=session.client_id
        )
        self._publish_will(session)
        self._disconnect_session(session, drop_will=True)

    def _publish_will(self, session: BrokerSession) -> None:
        if session.will is None:
            return
        topic, payload, qos, retain = session.will
        self.stats.wills_published += 1
        self._route_publish(Publish(topic=topic, payload=payload, qos=qos, retain=retain), origin=None)

    def _disconnect_session(self, session: BrokerSession, drop_will: bool) -> None:
        session.connected = False
        if drop_will:
            session.will = None
        session.outbox.clear()
        self._address_index.pop(session.address, None)
        if session.clean_session:
            self.sessions.pop(session.client_id, None)
            self._drop_session_routes(session)

    def _drop_session_routes(self, session: BrokerSession) -> None:
        for topic_filter in session.subscriptions:
            self._routes.discard(topic_filter, session.client_id)

    def _send_to(self, session: BrokerSession, packet: MqttPacket) -> None:
        self.send(session.address, packet, packet.wire_size(), flow="mqtt")

    # -- packet dispatch -----------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        mqtt_packet = packet.payload
        # Dispatch on exact class identity, ordered by wire frequency
        # (PUBLISH and PINGREQ dominate every workload).  Packet classes
        # are never subclassed, so ``is`` is equivalent to isinstance and
        # skips the mro walk on every inbound packet.
        kind = mqtt_packet.__class__
        if kind is Connect:
            self._on_connect(packet.src, mqtt_packet)
            return
        client_id = self._address_index.get(packet.src)
        session = self.sessions.get(client_id) if client_id else None
        if session is None or not session.connected:
            # Unknown peer: per spec the server closes the connection.  We
            # model the close as a DISCONNECT back to the sender (the "TCP
            # RST" a real client would observe after a broker restart), so
            # clients learn their session is gone without waiting out two
            # keepalive periods.  Still counted for DoS experiments.
            self.stats.dropped_overload += 1; self._m_dropped.inc()
            if kind is not Disconnect:
                self.send(packet.src, Disconnect(), Disconnect().wire_size(), flow="mqtt")
            return
        session.last_seen = self.sim.clock.now
        if kind is Publish:
            self._on_publish(session, mqtt_packet)
        elif kind is PingReq:
            self.send(session.address, _PINGRESP, _PINGRESP_SIZE, flow="mqtt")
        elif kind is PubAck:
            session.outbox.on_puback(mqtt_packet)
        elif kind is PubRec:
            session.outbox.on_pubrec(mqtt_packet)
        elif kind is PubRel:
            session.inbox.on_pubrel(mqtt_packet)
            release = getattr(session, "_qos2_release", {}).pop(mqtt_packet.packet_id, None)
            if release is not None:
                self._route_publish(release, origin=session)
        elif kind is PubComp:
            session.outbox.on_pubcomp(mqtt_packet)
        elif kind is Subscribe:
            self._on_subscribe(session, mqtt_packet)
        elif kind is Unsubscribe:
            self._on_unsubscribe(session, mqtt_packet)
        elif kind is Disconnect:
            self._disconnect_session(session, drop_will=True)

    # -- CONNECT -----------------------------------------------------------

    def _on_connect(self, src_address: str, connect: Connect) -> None:
        code = ConnectReturnCode.ACCEPTED
        if not connect.client_id:
            code = ConnectReturnCode.IDENTIFIER_REJECTED
        elif self.authenticator is not None:
            code = self.authenticator(connect)
        if code is not ConnectReturnCode.ACCEPTED:
            self.stats.rejected_connects += 1
            self._m_rejected.inc()
            self.sim.trace.emit(
                self.sim.now, "mqtt", "connect rejected",
                broker=self.address, client=connect.client_id, code=int(code),
            )
            self.send(src_address, ConnAck(return_code=code), ConnAck().wire_size(), flow="mqtt")
            return

        existing = self.sessions.get(connect.client_id)
        session_present = False
        if existing is not None and existing.connected:
            # Session takeover: the old connection is dropped.
            self._disconnect_session(existing, drop_will=False)
            existing = self.sessions.get(connect.client_id)

        if connect.clean_session or existing is None:
            if existing is not None:
                # A clean connect discards the persistent session it replaces.
                self._drop_session_routes(existing)
            session = BrokerSession(self, connect.client_id, src_address, connect)
            self.sessions[connect.client_id] = session
        else:
            session = existing
            session_present = True
            session.address = src_address
            session.connected = True
            session.keepalive_s = connect.keepalive_s
            session.last_seen = self.sim.clock.now
            session.username = connect.username
            if connect.will_topic:
                session.will = (
                    connect.will_topic, connect.will_payload, connect.will_qos, connect.will_retain
                )
        self._address_index[src_address] = connect.client_id
        self._note_session_deadline(session)
        self.stats.connects += 1
        self._m_connects.inc()
        self.send(
            src_address,
            ConnAck(return_code=code, session_present=session_present),
            ConnAck().wire_size(),
            flow="mqtt",
        )
        if session_present:
            self._flush_offline_queue(session)

    def _flush_offline_queue(self, session: BrokerSession) -> None:
        for publish in session.offline_queue.drain():
            self._deliver_to(session, publish, publish.qos)

    # -- PUBLISH in -----------------------------------------------------------

    def _on_publish(self, session: BrokerSession, publish: Publish) -> None:
        try:
            validate_topic(publish.topic)
        except TopicError:
            return
        if self.inbound_limit is not None and not self.inbound_limit.admit(self.sim.now):
            # Backpressure: shed before authorization and routing so a
            # flood (E4) costs the broker O(1) per excess packet.  REJECT
            # still completes the QoS handshake — a well-behaved client
            # must not amplify the flood with retransmissions — while
            # DROP_NEWEST models a truly saturated listener (flights
            # dangle, the sender retries into the same closed window).
            self.stats.shed_backpressure += 1
            self._m_shed.inc()
            if self.inbound_limit.policy is DropPolicy.REJECT:
                if publish.qos == 1:
                    self._send_to(session, PubAck(packet_id=publish.packet_id))
                elif publish.qos == 2:
                    session.inbox.on_publish_qos2(publish)
            return
        if self.authorizer is not None and not self.authorizer(session, "publish", publish.topic):
            self.stats.denied_publish += 1
            self._m_denied.inc()
            self.sim.trace.emit(
                self.sim.now, "mqtt", "publish denied",
                broker=self.address, client=session.client_id, topic=publish.topic,
            )
            # 3.1.1 has no puback error; broker silently drops (but still
            # completes QoS handshakes so the client doesn't retransmit).
            if publish.qos == 1:
                self._send_to(session, PubAck(packet_id=publish.packet_id))
            elif publish.qos == 2:
                session.inbox.on_publish_qos2(publish)
            return
        self.stats.publishes_in += 1
        self._m_pub_in.inc()
        if publish.qos == 0:
            self._route_publish(publish, origin=session)
        elif publish.qos == 1:
            self._send_to(session, PubAck(packet_id=publish.packet_id))
            self._route_publish(publish, origin=session)
        else:  # QoS 2: route on PUBREL (exactly once)
            first = session.inbox.on_publish_qos2(publish)
            if first:
                if not hasattr(session, "_qos2_release"):
                    session._qos2_release = {}
                session._qos2_release[publish.packet_id] = publish

    # -- routing -----------------------------------------------------------

    def _route_publish(self, publish: Publish, origin: Optional[BrokerSession]) -> None:
        tracer = self.sim.tracer
        route_span = None
        route_ctx = publish.trace_ctx
        if tracer.enabled and publish.trace_ctx is not None:
            # Never mutate the inbound publish: in the simulated network it
            # is the *same object* the sender's outbox holds for QoS
            # retransmission.  The route span's context travels only on the
            # fresh outbound copies built below.
            route_span = tracer.start_span(
                "broker.route",
                "mqtt",
                parent=publish.trace_ctx,
                broker=self.address,
                topic=publish.topic,
            )
            if route_span is not None:
                route_ctx = route_span.ctx
        if publish.retain:
            if publish.payload:
                self.retained[publish.topic] = Publish(
                    topic=publish.topic, payload=publish.payload, qos=publish.qos, retain=True
                )
            else:
                # Zero-byte retained payload clears the retained message.
                self.retained.pop(publish.topic, None)
        # Indexed hot path: the trie yields only the (client, filter) pairs
        # whose filter matches, in O(topic depth); the old code scanned
        # every filter of every session.  Delivery order is unchanged —
        # the matched client set is sorted by client_id exactly as the
        # full sorted-session scan produced it.
        matched = self._routes.match(publish.topic)
        self._m_route_candidates.inc(len(matched))
        granted: Dict[str, int] = {}
        for client_id, qos in matched:
            best = granted.get(client_id)
            if best is None or qos > best:
                granted[client_id] = qos
        if self.verify_routing:
            self._check_routing_equivalence(publish.topic, granted)
        for client_id in sorted(granted):
            session = self.sessions.get(client_id)
            if session is None:
                continue
            effective_qos = min(granted[client_id], publish.qos)
            if not session.connected:
                if not session.clean_session and effective_qos > 0:
                    session.offline_queue.push(
                        Publish(
                            topic=publish.topic,
                            payload=publish.payload,
                            qos=effective_qos,
                            trace_ctx=route_ctx,
                        )
                    )
                continue
            self._deliver_to(session, publish, effective_qos, ctx=route_ctx)
        if route_span is not None:
            tracer.end_span(route_span)

    def _check_routing_equivalence(self, topic: str, granted: Dict[str, int]) -> None:
        """Compare the trie's routing decision with the linear reference."""
        reference = {
            client_id: session.granted_qos(topic)
            for client_id, session in self.sessions.items()
            if session.granted_qos(topic) is not None
        }
        if reference != granted:
            raise RoutingMismatchError(
                f"indexed routing diverged for topic {topic!r}: "
                f"trie={dict(sorted(granted.items()))} scan={dict(sorted(reference.items()))}"
            )

    def _deliver_to(
        self, session: BrokerSession, publish: Publish, qos: int, ctx: Optional[object] = None
    ) -> None:
        outbound = Publish(
            topic=publish.topic,
            payload=publish.payload,
            qos=qos,
            retain=False,
            trace_ctx=ctx if ctx is not None else publish.trace_ctx,
        )
        self.stats.publishes_out += 1; self._m_pub_out.inc()
        if qos == 0:
            self._send_to(session, outbound)
        else:
            if session.outbox.send_publish(outbound) is None:
                self.stats.dropped_overload += 1; self._m_dropped.inc()

    # -- SUBSCRIBE / UNSUBSCRIBE --------------------------------------------------

    def _on_subscribe(self, session: BrokerSession, subscribe: Subscribe) -> None:
        return_codes = []
        granted = []
        for topic_filter, qos in subscribe.subscriptions:
            try:
                validate_filter(topic_filter)
            except TopicError:
                return_codes.append(SUBACK_FAILURE)
                continue
            if self.authorizer is not None and not self.authorizer(session, "subscribe", topic_filter):
                self.stats.denied_subscribe += 1
                self._m_denied.inc()
                self.sim.trace.emit(
                    self.sim.now, "mqtt", "subscribe denied",
                    broker=self.address, client=session.client_id, filter=topic_filter,
                )
                return_codes.append(SUBACK_FAILURE)
                continue
            qos = min(qos, 2)
            session.subscriptions[topic_filter] = qos
            self._routes.insert(topic_filter, session.client_id, qos)
            return_codes.append(qos)
            granted.append((topic_filter, qos))
        self._send_to(session, SubAck(packet_id=subscribe.packet_id, return_codes=tuple(return_codes)))
        # Retained message delivery for each newly granted filter.
        for topic_filter, qos in granted:
            for topic in sorted(self.retained):
                if topic_matches(topic_filter, topic):
                    retained = self.retained[topic]
                    outbound = Publish(
                        topic=retained.topic,
                        payload=retained.payload,
                        qos=min(qos, retained.qos),
                        retain=True,
                    )
                    self.stats.publishes_out += 1; self._m_pub_out.inc()
                    if outbound.qos == 0:
                        self._send_to(session, outbound)
                    else:
                        session.outbox.send_publish(outbound)

    def _on_unsubscribe(self, session: BrokerSession, unsubscribe: Unsubscribe) -> None:
        for topic_filter in unsubscribe.filters:
            if session.subscriptions.pop(topic_filter, None) is not None:
                self._routes.discard(topic_filter, session.client_id)
        self._send_to(session, UnsubAck(packet_id=unsubscribe.packet_id))

    # -- fault injection -----------------------------------------------------------

    def restart(self) -> None:
        """Simulate a broker process restart.

        All session state is volatile in this model: connected and
        persistent sessions alike are lost, every QoS flight in progress is
        abandoned (counted by ``Outbox.clear``) and offline queues are
        dropped.  Retained messages survive — brokers persist them to disk.
        Clients discover the restart either through the DISCONNECT answered
        to their next packet or through missed keepalive PINGRESPs, and
        re-establish sessions via their reconnect backoff.
        """
        self.stats.restarts += 1
        self.sim.trace.emit(
            self.sim.now, "mqtt", "broker restarted",
            broker=self.address, sessions_lost=len(self.sessions),
        )
        for session in list(self.sessions.values()):
            session.connected = False
            session.will = None
            session.outbox.clear()
            session.inbox.clear()
            session.offline_queue.clear()
        self.sessions.clear()
        self._address_index.clear()
        self._routes.clear()
        self._next_possible_expiry = float("inf")

    # -- inspection -----------------------------------------------------------

    def connected_clients(self) -> List[str]:
        return sorted(cid for cid, s in self.sessions.items() if s.connected)
