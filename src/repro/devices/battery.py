"""Battery and energy accounting.

Tracks joules drawn by category (radio, sensing, CPU, crypto) so experiment
E13 can attribute the cost of security mechanisms.  A 2×AA lithium pack is
roughly 25 kJ usable; field nodes are expected to last a season on it.
"""

from typing import Dict


class Battery:
    def __init__(self, capacity_j: float = 25_000.0) -> None:
        if capacity_j <= 0:
            raise ValueError("battery capacity must be positive")
        self.capacity_j = capacity_j
        self.remaining_j = capacity_j
        self.drawn_by_category: Dict[str, float] = {}

    @property
    def depleted(self) -> bool:
        return self.remaining_j <= 0.0

    @property
    def fraction_remaining(self) -> float:
        return max(0.0, self.remaining_j / self.capacity_j)

    def draw(self, joules: float, category: str = "other") -> bool:
        """Draw energy; returns False (and clamps) when the battery dies."""
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        self.drawn_by_category[category] = self.drawn_by_category.get(category, 0.0) + joules
        self.remaining_j -= joules
        if self.remaining_j < 0:
            self.remaining_j = 0.0
            return False
        return True

    def drawn(self, category: str) -> float:
        return self.drawn_by_category.get(category, 0.0)

    def total_drawn(self) -> float:
        return sum(self.drawn_by_category.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Battery({self.fraction_remaining:.1%} of {self.capacity_j:.0f} J)"
