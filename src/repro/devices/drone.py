"""Survey drone: flies the field and publishes an NDVI map.

Drones are the mobile fog nodes the paper mentions and the vehicle for the
Sybil/fake-data threat (E6): a legitimate drone measures
:func:`~repro.physics.ndvi.ndvi_for_zone` per zone with small sensor noise;
a Sybil identity fabricates values with no grounding in the field state.
"""

from typing import Any, Dict, List, Optional

from repro.devices.base import Device, DeviceConfig
from repro.devices.codec import encode_payload
from repro.network.topology import Network
from repro.physics.field import Field
from repro.physics.ndvi import NdviTracker
from repro.simkernel.simulator import Simulator


class Drone(Device):
    """NDVI survey drone.

    Commands::

        {"cmd": "survey"}   # start a survey pass now

    The drone visits zones in scan order, one every ``seconds_per_zone``,
    and publishes one NDVI observation per zone on
    ``swamp/<farm>/attrs/<drone_id>`` (tagged with the zone id), then a
    summary.  The surrounding pilot keeps the per-zone
    :class:`NdviTracker` objects updated with daily stress.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: DeviceConfig,
        broker_address: str,
        field: Field,
        trackers: Optional[Dict[str, NdviTracker]] = None,
        seconds_per_zone: float = 20.0,
        noise_sigma: float = 0.015,
    ) -> None:
        super().__init__(sim, network, config, broker_address)
        self.field = field
        self.trackers = trackers or {}
        self.seconds_per_zone = seconds_per_zone
        self.noise_sigma = noise_sigma
        self.surveys_completed = 0
        self.surveying = False
        self._survey_process = None

    def read_measures(self) -> Optional[Dict[str, Any]]:
        return {"droneState": "surveying" if self.surveying else "idle",
                "surveys": self.surveys_completed}

    def on_command(self, command: Dict[str, Any]) -> str:
        if command.get("cmd") == "survey":
            if self.surveying:
                return "busy"
            self.start_survey()
            return "ok"
        return "unknown-command"

    def start_survey(self) -> None:
        if self.surveying or self.dead:
            return
        self.surveying = True
        self._survey_process = self.sim.spawn(
            self._survey_loop(), f"survey:{self.config.device_id}"
        )

    def stop(self) -> None:
        if self._survey_process is not None:
            self._survey_process.kill("stopped")
            self._survey_process = None
            self.surveying = False
        super().stop()

    def measure_zone(self, zone) -> float:
        tracker = self.trackers.get(zone.zone_id)
        if tracker is not None:
            true_ndvi = tracker.ndvi()
        else:
            from repro.physics.ndvi import ndvi_for_zone

            true_ndvi = ndvi_for_zone(zone)
        noisy = true_ndvi + self._rng.gauss(0.0, self.noise_sigma)
        return max(0.0, min(1.0, noisy))

    def _survey_loop(self):
        observations = 0
        for zone in self.field:
            if self.dead:
                break
            yield self.seconds_per_zone
            ndvi = self.measure_zone(zone)
            payload = encode_payload(
                {
                    "ndvi": round(ndvi, 4),
                    "zone": zone.zone_id,
                    "row": zone.row,
                    "col": zone.col,
                    "ts": round(self.sim.now, 3),
                }
            )
            if self.client.publish(self.attrs_topic, payload, qos=0):
                observations += 1
            self.battery.draw(0.3, "flight")  # flight energy dwarfs radio
        self.surveying = False
        if observations:
            self.surveys_completed += 1
            summary = encode_payload(
                {"surveyDone": True, "observations": observations, "ts": round(self.sim.now, 3)}
            )
            self.client.publish(self.attrs_topic, summary, qos=1)
