"""Telemetry payload codec.

Device measures and commands travel as compact JSON (UTF-8 bytes) — the
same wire shape a FIWARE IoT Agent's MQTT south port expects.  Compact
separators keep the simulated byte counts honest.
"""

import json
from typing import Any, Dict, Optional


def encode_payload(data: Dict[str, Any]) -> bytes:
    return json.dumps(data, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_payload(raw: bytes) -> Optional[Dict[str, Any]]:
    """Decode a telemetry payload; None for garbage (never raises).

    Garbage arrives in practice: ciphertext read by the wrong party,
    fuzzing attackers, truncated frames.  Callers count decode failures.
    """
    try:
        value = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(value, dict):
        return None
    return value
