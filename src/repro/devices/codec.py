"""Telemetry payload codec.

Device measures and commands travel as compact JSON (UTF-8 bytes) — the
same wire shape a FIWARE IoT Agent's MQTT south port expects.  Compact
separators keep the simulated byte counts honest.
"""

import json
from typing import Any, Dict, Optional

# One shared encoder: json.dumps with non-default kwargs builds a fresh
# JSONEncoder (and its C callable) on every call, which at one encode per
# publish was a visible slice of season profiles.  Output is byte-identical.
_ENCODER = json.JSONEncoder(separators=(",", ":"), sort_keys=True)
_encode = _ENCODER.encode


def _key_is_plain(key: Any) -> bool:
    """Keys the fast path can emit without JSON string escaping."""
    return (
        type(key) is str
        and key.isascii()
        and key.isprintable()
        and '"' not in key
        and "\\" not in key
    )


def encode_payload(data: Dict[str, Any]) -> bytes:
    """Encode a payload dict to compact sorted-key JSON bytes.

    Fast path for the flat numeric dicts devices actually send (measure
    and heartbeat payloads): floats/ints/bools formatted exactly as the
    stdlib encoder formats them, so the bytes — and therefore the
    simulated packet sizes and timings — are identical.  Anything else
    (strings, nesting, non-finite floats) falls back to the encoder.
    """
    parts = []
    append = parts.append
    try:
        keys = sorted(data)
    except TypeError:
        return _encode(data).encode("utf-8")
    for key in keys:
        value = data[key]
        tv = type(value)
        if tv is float:
            if value - value != 0.0:  # inf/nan spell differently in JSON
                return _encode(data).encode("utf-8")
            sv = repr(value)
        elif tv is int:
            sv = repr(value)
        elif tv is bool:
            sv = "true" if value else "false"
        else:
            return _encode(data).encode("utf-8")
        if not _key_is_plain(key):
            return _encode(data).encode("utf-8")
        append(f'"{key}":{sv}')
    return ("{" + ",".join(parts) + "}").encode("utf-8")


def decode_payload(raw: bytes) -> Optional[Dict[str, Any]]:
    """Decode a telemetry payload; None for garbage (never raises).

    Garbage arrives in practice: ciphertext read by the wrong party,
    fuzzing attackers, truncated frames.  Callers count decode failures.
    """
    try:
        value = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(value, dict):
        return None
    return value
