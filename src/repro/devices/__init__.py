"""IoT device models.

Devices are the leaves of the SWAMP pipeline: they sample the agro-physics
substrate (or accept actuation commands that feed back into it) and speak
MQTT over constrained field radio.  Each device owns

* a firmware loop (simulation process) with a sampling/reporting interval,
* a battery and per-operation energy accounting (radio TX dominates, which
  is why the paper insists security mechanisms be energy-efficient — E13),
* failure and tamper hooks used by the dependability and attack layers.

Sampling runs in one of two modes: the classic per-device firmware loop,
or batched enrollment in a per-farm :class:`SweepScheduler` (one kernel
event sweeps every device sharing a report interval — see ``sweep.py``),
which is the pilot default.
"""

from repro.devices.base import Device, DeviceConfig
from repro.devices.battery import Battery
from repro.devices.codec import decode_payload, encode_payload
from repro.devices.sensors import SoilMoistureProbe, WaterFlowMeter, WeatherStation
from repro.devices.actuators import CenterPivot, Pump, Valve
from repro.devices.drone import Drone
from repro.devices.sweep import SweepGroup, SweepScheduler

__all__ = [
    "Battery",
    "CenterPivot",
    "Device",
    "DeviceConfig",
    "Drone",
    "Pump",
    "SoilMoistureProbe",
    "SweepGroup",
    "SweepScheduler",
    "Valve",
    "WaterFlowMeter",
    "WeatherStation",
    "decode_payload",
    "encode_payload",
]
