"""IoT device models.

Devices are the leaves of the SWAMP pipeline: they sample the agro-physics
substrate (or accept actuation commands that feed back into it) and speak
MQTT over constrained field radio.  Each device owns

* a firmware loop (simulation process) with a sampling/reporting interval,
* a battery and per-operation energy accounting (radio TX dominates, which
  is why the paper insists security mechanisms be energy-efficient — E13),
* failure and tamper hooks used by the dependability and attack layers.
"""

from repro.devices.base import Device, DeviceConfig
from repro.devices.battery import Battery
from repro.devices.codec import decode_payload, encode_payload
from repro.devices.sensors import SoilMoistureProbe, WaterFlowMeter, WeatherStation
from repro.devices.actuators import CenterPivot, Pump, Valve
from repro.devices.drone import Drone

__all__ = [
    "Battery",
    "CenterPivot",
    "Device",
    "DeviceConfig",
    "Drone",
    "Pump",
    "SoilMoistureProbe",
    "Valve",
    "WaterFlowMeter",
    "WeatherStation",
    "decode_payload",
    "encode_payload",
]
