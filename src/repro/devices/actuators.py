"""Actuator device models: valves, pumps and VRI-capable center pivots.

Actuation closes the loop: commands arrive over MQTT (from the irrigation
scheduler, via the IoT agent) and water lands on
:class:`~repro.physics.field.FieldZone` objects, changing what the soil
probes will read next.  The rogue-actuator attack (paper §III) reuses these
same command paths, which is exactly why the platform authenticates them.
"""

from typing import Any, Dict, List, Optional

from repro.devices.base import Device, DeviceConfig
from repro.devices.sensors import WaterFlowMeter
from repro.network.topology import Network
from repro.physics.field import FieldZone
from repro.simkernel.clock import HOUR
from repro.simkernel.simulator import Simulator

# Specific pumping energy: kWh per m3 per metre of head at unit efficiency.
_KWH_PER_M3_PER_M_HEAD = 0.002725


class Pump(Device):
    """Irrigation pump: meters energy for every m³ it moves."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: DeviceConfig,
        broker_address: str,
        head_m: float = 45.0,
        efficiency: float = 0.75,
    ) -> None:
        super().__init__(sim, network, config, broker_address)
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("pump efficiency must be in (0, 1]")
        self.head_m = head_m
        self.efficiency = efficiency
        self.total_m3 = 0.0
        self.total_kwh = 0.0
        self.running = False

    def pump_volume(self, volume_m3: float) -> float:
        """Account for pumping ``volume_m3``; returns the energy used (kWh)."""
        if volume_m3 < 0:
            raise ValueError("volume must be non-negative")
        energy = volume_m3 * _KWH_PER_M3_PER_M_HEAD * self.head_m / self.efficiency
        self.total_m3 += volume_m3
        self.total_kwh += energy
        return energy

    def read_measures(self) -> Optional[Dict[str, Any]]:
        return {
            "totalVolume": round(self.total_m3, 3),
            "totalEnergy": round(self.total_kwh, 4),
            "running": self.running,
        }

    def on_command(self, command: Dict[str, Any]) -> str:
        action = command.get("cmd")
        if action == "start":
            self.running = True
            return "ok"
        if action == "stop":
            self.running = False
            return "ok"
        return "unknown-command"


class Valve(Device):
    """Solenoid valve irrigating one zone at a fixed application rate.

    Commands::

        {"cmd": "open", "duration_s": 3600}   # or "depth_mm": 12.5
        {"cmd": "close"}

    While open, water is applied to the zone in 5-minute slices so soil
    probes observe a gradual wet-up rather than a step.
    """

    APPLY_SLICE_S = 300.0

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: DeviceConfig,
        broker_address: str,
        zone: FieldZone,
        rate_mm_h: float = 8.0,
        pump: Optional[Pump] = None,
        flow_meter: Optional[WaterFlowMeter] = None,
    ) -> None:
        super().__init__(sim, network, config, broker_address)
        if rate_mm_h <= 0:
            raise ValueError("application rate must be positive")
        self.zone = zone
        self.rate_mm_h = rate_mm_h
        self.pump = pump
        self.flow_meter = flow_meter
        self.is_open = False
        self._close_at = 0.0
        self._apply_process = None
        self.total_applied_mm = 0.0
        self.open_count = 0

    def read_measures(self) -> Optional[Dict[str, Any]]:
        return {
            "valveState": "open" if self.is_open else "closed",
            "appliedDepth": round(self.total_applied_mm, 3),
        }

    def on_command(self, command: Dict[str, Any]) -> str:
        action = command.get("cmd")
        if action == "open":
            duration = command.get("duration_s")
            depth = command.get("depth_mm")
            if duration is None and depth is not None:
                duration = float(depth) / self.rate_mm_h * HOUR
            if duration is None or duration <= 0:
                return "bad-arguments"
            self.open_for(float(duration))
            return "ok"
        if action == "close":
            self.close()
            return "ok"
        return "unknown-command"

    def open_for(self, duration_s: float) -> None:
        self._close_at = self.sim.now + duration_s
        if not self.is_open:
            self.is_open = True
            self.open_count += 1
            self._apply_process = self.sim.spawn(
                self._apply_loop(), f"valve:{self.config.device_id}"
            )

    def close(self) -> None:
        self.is_open = False
        self._close_at = self.sim.now

    def _apply_loop(self):
        while self.is_open and self.sim.now < self._close_at:
            slice_s = min(self.APPLY_SLICE_S, self._close_at - self.sim.now)
            yield slice_s
            if not self.is_open:
                break
            depth_mm = self.rate_mm_h * slice_s / HOUR
            self._apply(depth_mm)
        self.is_open = False

    def _apply(self, depth_mm: float) -> None:
        self.zone.irrigate(depth_mm)
        self.total_applied_mm += depth_mm
        volume_m3 = depth_mm * self.zone.area_ha * 10.0
        if self.pump is not None:
            self.pump.pump_volume(volume_m3)
        if self.flow_meter is not None:
            self.flow_meter.add_flow(volume_m3)


class CenterPivot(Device):
    """Center-pivot irrigation machine with Variable Rate Irrigation.

    The pivot sweeps its zones in order, one sector per pass step.  A
    *prescription map* gives per-zone depths (mm); a uniform pass applies
    the same depth everywhere.  Sector dwell time scales with prescribed
    depth (speed control), so a revolution's duration depends on the map.

    Commands::

        {"cmd": "start_pass", "depth_mm": 12}                  # uniform
        {"cmd": "start_pass", "prescription": {"f/z0-0": 10}}  # VRI
        {"cmd": "stop"}
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: DeviceConfig,
        broker_address: str,
        zones: List[FieldZone],
        max_application_rate_mm_h: float = 10.0,
        pump: Optional[Pump] = None,
        move_energy_kwh_per_sector: float = 0.6,
    ) -> None:
        super().__init__(sim, network, config, broker_address)
        if not zones:
            raise ValueError("pivot needs at least one zone")
        self.zones = list(zones)
        self.max_application_rate_mm_h = max_application_rate_mm_h
        self.pump = pump
        self.move_energy_kwh_per_sector = move_energy_kwh_per_sector
        self.move_energy_kwh = 0.0
        self.running = False
        self.current_sector = 0
        self.passes_completed = 0
        self.total_applied_mm = 0.0
        self._pass_process = None

    def read_measures(self) -> Optional[Dict[str, Any]]:
        return {
            "pivotState": "running" if self.running else "idle",
            "sector": self.current_sector,
            "passes": self.passes_completed,
            "appliedDepth": round(self.total_applied_mm, 3),
        }

    def on_command(self, command: Dict[str, Any]) -> str:
        action = command.get("cmd")
        if action == "start_pass":
            if self.running:
                return "busy"
            prescription = command.get("prescription")
            depth = command.get("depth_mm")
            if prescription is None and depth is None:
                return "bad-arguments"
            if prescription is None:
                prescription = {z.zone_id: float(depth) for z in self.zones}
            self.start_pass(prescription)
            return "ok"
        if action == "stop":
            self.stop_pass()
            return "ok"
        return "unknown-command"

    def start_pass(self, prescription: Dict[str, float]) -> None:
        if self.running:
            return
        self.running = True
        self._pass_process = self.sim.spawn(
            self._pass_loop(prescription), f"pivot:{self.config.device_id}"
        )

    def stop_pass(self) -> None:
        self.running = False

    def pass_duration_s(self, prescription: Dict[str, float]) -> float:
        """How long a pass with this map takes (dwell scales with depth)."""
        total = 0.0
        for zone in self.zones:
            depth = max(0.0, prescription.get(zone.zone_id, 0.0))
            dwell_h = depth / self.max_application_rate_mm_h if depth > 0 else 0.05
            total += dwell_h * HOUR
        return total

    def _pass_loop(self, prescription: Dict[str, float]):
        for index, zone in enumerate(self.zones):
            if not self.running:
                break
            self.current_sector = index
            depth = max(0.0, prescription.get(zone.zone_id, 0.0))
            dwell_h = depth / self.max_application_rate_mm_h if depth > 0 else 0.05
            yield dwell_h * HOUR
            if not self.running:
                break
            if depth > 0:
                zone.irrigate(depth)
                self.total_applied_mm += depth
                volume_m3 = depth * zone.area_ha * 10.0
                if self.pump is not None:
                    self.pump.pump_volume(volume_m3)
            self.move_energy_kwh += self.move_energy_kwh_per_sector
        if self.running:
            self.passes_completed += 1
        self.running = False

    def total_energy_kwh(self) -> float:
        pumping = self.pump.total_kwh if self.pump is not None else 0.0
        return pumping + self.move_energy_kwh
