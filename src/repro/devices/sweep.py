"""Batched device sampling: one kernel event sweeps a whole farm.

Legacy sampling runs one generator process per device, so every report
costs a timer event plus a generator resume — on a full-season pilot the
36 probe firmware loops alone contribute ~200k of the most expensive
events in the schedule.  A :class:`SweepScheduler` replaces them with one
self-rescheduling callback per distinct report interval per farm: each
tick walks the enrolled devices in struct-of-arrays order (parallel
device/reporter arrays, bound methods cached at enrollment) and samples
every live device in a single event.

Behavioural contract, mirrored from ``Device._firmware_loop``:

* a *failed* device skips the sample but stays enrolled (it resumes
  reporting after repair, exactly like the legacy loop's ``if not
  self.failed`` guard);
* a *dead* device (battery exhausted) is dropped from the group — the
  legacy loop ``return``-ed on ``dead``;
* ``Device.stop()`` removes the device immediately via
  :meth:`SweepGroup.remove`.

Schedule note (Tier B): the legacy mode phase-shifts every device
individually (one RNG draw per device from its own stream), while a sweep
group draws a single start phase per (farm, interval) from the dedicated
``sweep:<farm>`` stream and samples the whole group in one batch.  Event
timestamps and RNG consumption therefore differ from legacy mode by
design; pinned pilot fixtures were re-pinned when batched sampling became
the pilot default (see tests/test_pilot_pinned.py).

Checkpoint/restore follows the same convention as the broker's sweeper:
the tick is a plain self-rescheduling callback, so a run-level checkpoint
rebuilds it by replaying the builder (no generator state to capture).
"""

from typing import Dict, List, Optional

from repro.simkernel.simulator import Simulator


class SweepGroup:
    """All devices of one farm sharing one report interval."""

    __slots__ = ("sim", "interval_s", "label", "_rng", "_devices", "_reporters", "_ticking")

    def __init__(self, sim: Simulator, farm: str, interval_s: float, rng) -> None:
        self.sim = sim
        self.interval_s = interval_s
        self.label = f"sweep:{farm}:{interval_s:g}"
        self._rng = rng
        # Struct-of-arrays: parallel device / bound-reporter arrays so the
        # tick touches one flat list per concern instead of re-binding
        # device.report_once on every sample.
        self._devices: List = []
        self._reporters: List = []
        self._ticking = False

    def __len__(self) -> int:
        return len(self._devices)

    def add(self, device) -> None:
        self._devices.append(device)
        self._reporters.append(device.report_once)
        if not self._ticking:
            self._ticking = True
            # One phase draw per group (not per device): the whole batch
            # desynchronizes from other groups, like real fleets whose
            # gateways poll their attached sensors in one radio round.
            delay = self._rng.uniform(0.0, self.interval_s)
            self.sim.schedule(delay, self._tick, label=self.label)

    def remove(self, device) -> bool:
        """Drop ``device`` from the group; True when it was enrolled."""
        try:
            i = self._devices.index(device)
        except ValueError:
            return False
        del self._devices[i]
        del self._reporters[i]
        return True

    def _tick(self) -> None:
        devices = self._devices
        reporters = self._reporters
        drop = None
        for i in range(len(devices)):
            device = devices[i]
            if device.dead:
                if drop is None:
                    drop = [i]
                else:
                    drop.append(i)
            elif not device.failed:
                reporters[i]()
        if drop is not None:
            for i in reversed(drop):
                del devices[i]
                del reporters[i]
        if not devices:
            # Empty group: stop ticking.  A later enrollment restarts the
            # tick with a fresh phase draw.
            self._ticking = False
            return
        self.sim.schedule(self.interval_s, self._tick, label=self.label)


class SweepScheduler:
    """Per-farm registry of sweep groups, keyed by report interval."""

    def __init__(self, sim: Simulator, farm: str) -> None:
        self.sim = sim
        self.farm = farm
        self._groups: Dict[float, SweepGroup] = {}
        # Dedicated stream: group phase draws must not perturb any other
        # subsystem's RNG sequence (same isolation rule as reconnect
        # backoff jitter).
        self._rng = sim.rng.stream(f"sweep:{farm}")

    def enroll(self, device) -> SweepGroup:
        """Add ``device`` to the group for its report interval."""
        interval = device.config.report_interval_s
        group = self._groups.get(interval)
        if group is None:
            group = self._groups[interval] = SweepGroup(
                self.sim, self.farm, interval, self._rng
            )
        group.add(device)
        return group

    def group_for(self, interval_s: float) -> Optional[SweepGroup]:
        return self._groups.get(interval_s)

    def total_enrolled(self) -> int:
        return sum(len(g) for g in self._groups.values())
