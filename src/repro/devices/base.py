"""Device base class: firmware loop, energy, failure and tamper hooks."""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.devices.battery import Battery
from repro.devices.codec import decode_payload, encode_payload
from repro.mqtt.client import MqttClient
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator

# Energy costs per operation, representative of a class-1 constrained node.
SENSE_ENERGY_J = 0.010
CPU_ENERGY_J_PER_BYTE = 0.0000015  # baseline processing per payload byte


@dataclass
class DeviceConfig:
    device_id: str
    farm: str
    device_type: str
    report_interval_s: float = 900.0  # 15 min default sampling
    qos: int = 0
    battery_capacity_j: float = 25_000.0
    # Mean time between transient failures (0 disables failure injection).
    mtbf_s: float = 0.0
    repair_time_s: float = 3600.0
    api_key: str = ""  # provisioning credential checked by the IoT agent
    extra: Dict[str, Any] = field(default_factory=dict)


class Device:
    """Base class for sensors/actuators.

    Subclasses implement :meth:`read_measures` (returning the attribute
    dict to report) and may override :meth:`on_command`.

    Sampling runs in one of two modes.  Legacy mode spawns a generator
    process per device (``_firmware_loop``).  When :attr:`sweeper` is set
    (a :class:`repro.devices.sweep.SweepScheduler`) before :meth:`start`,
    the device instead enrolls in a per-farm batched sweep group: one
    kernel event drives every same-interval device on the farm.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: DeviceConfig,
        broker_address: str,
        gateway_model=None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.battery = Battery(config.battery_capacity_j)
        self.failed = False
        self.dead = False  # battery exhausted: permanent
        self.sent_reports = 0
        self.commands_handled = 0
        # Attack hook: functions mutating the measure dict before encoding
        # (sensor tampering, E5).  Kept as a list so attacks stack.
        self.tamper_hooks: list = []
        # Security hook: per-message extra CPU cost (crypto, E13).
        self.security_energy_j_per_msg = 0.0

        # Topic strings are fixed for the device's lifetime; build them
        # once instead of re-formatting on every publish.
        farm, device_id = config.farm, config.device_id
        self.attrs_topic = f"swamp/{farm}/attrs/{device_id}"
        self.command_topic = f"swamp/{farm}/cmd/{device_id}"
        self.command_ack_topic = f"swamp/{farm}/cmdexe/{device_id}"
        self.status_topic = f"swamp/{farm}/status/{device_id}"

        address = f"dev:{config.device_id}"
        self.client = MqttClient(
            sim,
            address,
            broker_address,
            client_id=config.device_id,
            username=config.farm,
            password=config.api_key,
            keepalive_s=max(60.0, config.report_interval_s * 2),
            will=(self.status_topic, b"offline", 0, False),
        )
        network.add_node(self.client)
        self._rng = sim.rng.stream(f"device:{config.device_id}")
        self.client.add_handler(self.command_topic, self._handle_command)
        self._process = None
        self._failure_process = None
        # Batched-sampling wiring: the builder stage sets ``sweeper``
        # before start() to opt the device into sweep-driven sampling.
        self.sweeper = None
        self._sweep_group = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Connect and start sampling (sweep enrollment or firmware loop)."""
        self.client.connect()
        self.client.subscribe(self.command_topic, qos=1)
        if self.sweeper is not None:
            self._sweep_group = self.sweeper.enroll(self)
        else:
            self._process = self.sim.spawn(
                self._firmware_loop(), f"fw:{self.config.device_id}"
            )
        if self.config.mtbf_s > 0:
            self._failure_process = self.sim.spawn(
                self._failure_loop(), f"fail:{self.config.device_id}"
            )

    def stop(self) -> None:
        """Stop sampling and the failure clock, then disconnect.

        Kills *both* spawned loops: a stopped device must neither report
        nor keep flipping ``failed`` state from a leaked failure process.
        """
        if self._process is not None:
            self._process.kill("stopped")
            self._process = None
        if self._failure_process is not None:
            self._failure_process.kill("stopped")
            self._failure_process = None
        if self._sweep_group is not None:
            self._sweep_group.remove(self)
            self._sweep_group = None
        self.client.disconnect()

    def _firmware_loop(self):
        # Desynchronize device start-up (real fleets never sample in phase).
        yield self._rng.uniform(0.0, self.config.report_interval_s)
        while True:
            if self.dead:
                return
            if not self.failed:
                self.report_once()
            yield self.config.report_interval_s

    def _failure_loop(self):
        while True:
            yield self._rng.expovariate(1.0 / self.config.mtbf_s)
            self.failed = True
            self.sim.trace.emit(
                self.sim.now, "device", "transient failure", device=self.config.device_id
            )
            yield self.config.repair_time_s
            self.failed = False
            self.sim.trace.emit(
                self.sim.now, "device", "repaired", device=self.config.device_id
            )

    # -- telemetry -----------------------------------------------------------

    def read_measures(self) -> Optional[Dict[str, Any]]:
        """Subclass hook: return the attribute dict to report, or None."""
        raise NotImplementedError

    def report_once(self) -> bool:
        """Take one sample and publish it; returns True when sent."""
        if self.dead or self.failed:
            return False
        battery = self.battery
        if not battery.draw(SENSE_ENERGY_J, "sensing"):
            self._die()
            return False
        measures = self.read_measures()
        if measures is None:
            return False
        for hook in self.tamper_hooks:
            measures = hook(measures)
            if measures is None:
                return False
        measures = dict(measures)
        measures["ts"] = round(self.sim.clock.now, 3)
        payload = encode_payload(measures)
        energy = (
            len(payload) * CPU_ENERGY_J_PER_BYTE
            + self.security_energy_j_per_msg
            + self._radio_energy(len(payload))
        )
        if not battery.draw(energy, "radio+cpu"):
            self._die()
            return False
        if self.security_energy_j_per_msg:
            battery.draw(0.0, "crypto")  # category registration only
        # Each report starts a new causal chain: the trace root every
        # downstream hop (publish, route, context update, decision) hangs
        # from.  Head sampling happens here, once per reading.
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span(
                "device.report",
                "device",
                root=True,
                device=self.config.device_id,
                topic=self.attrs_topic,
            ):
                sent = self.client.publish(self.attrs_topic, payload, qos=self.config.qos)
        else:
            sent = self.client.publish(self.attrs_topic, payload, qos=self.config.qos)
        if sent:
            self.sent_reports += 1
        return sent

    def _radio_energy(self, payload_bytes: int) -> float:
        # LoRa-class per-byte TX cost plus a fixed wakeup cost.
        return 0.05 + payload_bytes * 0.0012

    def _die(self) -> None:
        if not self.dead:
            self.dead = True
            self.sim.trace.emit(
                self.sim.now, "device", "battery exhausted", device=self.config.device_id
            )

    # -- commands -----------------------------------------------------------

    def _handle_command(self, topic: str, payload: bytes, qos: int, retain: bool) -> None:
        if self.dead or self.failed:
            return
        command = decode_payload(payload)
        if command is None:
            return
        self.commands_handled += 1
        with self.sim.tracer.span(
            "device.command",
            "device",
            device=self.config.device_id,
            cmd=command.get("cmd", "?"),
        ):
            result = self.on_command(command)
            ack = {"cmd": command.get("cmd", "?"), "result": result, "ts": round(self.sim.now, 3)}
            self.client.publish(self.command_ack_topic, encode_payload(ack), qos=1)

    def on_command(self, command: Dict[str, Any]) -> str:
        """Subclass hook; return a result string for the ack."""
        return "ignored"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.config.device_id!r})"
