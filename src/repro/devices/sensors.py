"""Sensor device models: soil probes, weather stations, flow meters."""

from typing import Any, Dict, Optional

from repro.devices.base import Device, DeviceConfig
from repro.network.topology import Network
from repro.physics.field import FieldZone
from repro.physics.weather import DailyWeather
from repro.simkernel.simulator import Simulator


class SoilMoistureProbe(Device):
    """Capacitive soil-moisture probe attached to one field zone.

    Reads the zone's volumetric water content with multiplicative gain
    error (per-unit calibration, fixed at install time) and additive
    Gaussian noise.  Tamper hooks (E5) mutate the reported dict after this.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: DeviceConfig,
        broker_address: str,
        zone: FieldZone,
        noise_sigma: float = 0.008,
    ) -> None:
        super().__init__(sim, network, config, broker_address)
        self.zone = zone
        self.noise_sigma = noise_sigma
        self.gain = self._rng.bounded_gauss(1.0, 0.02, 0.9, 1.1)

    def read_measures(self) -> Optional[Dict[str, Any]]:
        theta = self.zone.theta * self.gain + self._rng.gauss(0.0, self.noise_sigma)
        return {
            "soilMoisture": round(max(0.0, min(1.0, theta)), 4),
            "zone": self.zone.zone_id,
        }


class WeatherStation(Device):
    """Farm weather station reporting the current day's observations.

    The surrounding pilot runner updates :attr:`today` every simulated
    morning; the station publishes it (with small instrument noise) on its
    report interval.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: DeviceConfig,
        broker_address: str,
    ) -> None:
        super().__init__(sim, network, config, broker_address)
        self.today: Optional[DailyWeather] = None

    def read_measures(self) -> Optional[Dict[str, Any]]:
        if self.today is None:
            return None
        day = self.today
        return {
            "tMin": round(day.tmin_c + self._rng.gauss(0, 0.2), 2),
            "tMax": round(day.tmax_c + self._rng.gauss(0, 0.2), 2),
            "rh": round(min(100.0, max(0.0, day.rh_mean_pct + self._rng.gauss(0, 1.0))), 1),
            "wind": round(max(0.0, day.wind_ms + self._rng.gauss(0, 0.1)), 2),
            "solar": round(max(0.0, day.solar_mj_m2 + self._rng.gauss(0, 0.3)), 2),
            "rain": round(day.rain_mm, 2),
            "et0": round(day.et0_mm, 3),
        }


class WaterFlowMeter(Device):
    """Totalizing flow meter on a pipe or canal offtake.

    Other components (valves, pumps, the distribution network) call
    :meth:`add_flow` as water moves; the meter reports the cumulative
    total plus the rate since the previous report.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: DeviceConfig,
        broker_address: str,
    ) -> None:
        super().__init__(sim, network, config, broker_address)
        self.total_m3 = 0.0
        self._last_reported_m3 = 0.0
        self._last_report_time = sim.now

    def add_flow(self, volume_m3: float) -> None:
        if volume_m3 < 0:
            raise ValueError("flow volume must be non-negative")
        self.total_m3 += volume_m3

    def read_measures(self) -> Optional[Dict[str, Any]]:
        elapsed = max(1e-9, self.sim.clock.now - self._last_report_time)
        delta = self.total_m3 - self._last_reported_m3
        rate_m3_h = delta / (elapsed / 3600.0)
        self._last_reported_m3 = self.total_m3
        self._last_report_time = self.sim.clock.now
        return {
            "totalFlow": round(self.total_m3, 3),
            "flowRate": round(rate_m3_h, 3),
        }
