"""The append-only segment store and the history durability service.

:class:`SegmentStore` is the WAL-shaped archive: records append to the
active segment (checksummed frames, see :mod:`repro.store.segment`),
an explicit :meth:`~SegmentStore.commit` runs the fsync barrier that
makes them durable, and segments rotate at a size threshold — rotation
itself is a barrier (the finished segment is fsynced before the next
one opens), so only the *last* segment can ever hold a torn tail.
:meth:`~SegmentStore.recover` is the crash path: scan every segment in
order, verify every checksum, truncate the first bad frame and
everything after it, and hand back the surviving record prefix.

:class:`DurabilityService` wires the store behind
:class:`~repro.context.history.ShortTermHistory`: every sample the
history accepts is framed and appended write-through, and a sim-time
flush process runs the commit barrier every ``flush_interval_s`` — the
"fsync barriers modeled as sim-time events" half of the design, which
keeps durability costs on the simulation clock and runs bit-identical.
On a simulated ``process_kill`` the service drops the in-memory rings
and rollups, recovers the store, and rebuilds the history from the
recovered prefix — after which reads are exactly what an uninterrupted
run truncated at the commit point would serve (the E20 property).

Everything here is **off by default**: no pilot constructs a store
unless ``RunOptions.store_dir`` (CLI ``--store``) or an explicit
:func:`attach_durable_history` call asks for one, so pinned fixtures
and the E18/E19 benchmarks are untouched.
"""

import json
import os
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.store.backend import (
    AppendFile,
    FsyncFailedError,
    StorageFaults,
    TornWriteError,
)
from repro.store.segment import (
    StoreError,
    encode_record,
    fsync_dir,
    scan_records,
    segment_path,
    segments_in,
)

__all__ = [
    "DurabilityService",
    "SegmentStore",
    "attach_durable_history",
    "decode_sample",
    "encode_sample",
]

SampleRecord = Tuple[str, str, float, float]


def encode_sample(entity_id: str, attr: str, t: float, v: float) -> bytes:
    """Canonical sample payload: compact JSON array, byte-stable."""
    return json.dumps([entity_id, attr, t, v], separators=(",", ":")).encode("utf-8")


def decode_sample(payload: bytes) -> SampleRecord:
    entity_id, attr, t, v = json.loads(payload.decode("utf-8"))
    return (entity_id, attr, float(t), float(v))


class SegmentStore:
    """Append-only, checksummed, crash-recoverable record log."""

    def __init__(
        self,
        root: str,
        max_segment_bytes: int = 4 * 1024 * 1024,
        faults: Optional[StorageFaults] = None,
    ) -> None:
        if max_segment_bytes <= 0:
            raise StoreError(f"max_segment_bytes must be positive, got {max_segment_bytes}")
        self.root = root
        self.max_segment_bytes = max_segment_bytes
        self.faults = faults if faults is not None else StorageFaults()
        os.makedirs(root, exist_ok=True)
        #: Records handed to :meth:`append` over this store's lifetime
        #: (recovered records count once recovery has run).
        self.appended = 0
        #: Records covered by a successful barrier.
        self.committed = 0
        self.commits = 0
        self.deferred_commits = 0
        self.failed_commits = 0
        self.rotations = 0
        self.recoveries = 0
        self.torn_tails_truncated = 0
        #: Byte length of each record in the active segment past the
        #: durable watermark is implied by the frames themselves; what we
        #: track is per-segment record counts for recovery accounting.
        self._active: Optional[AppendFile] = None
        self._active_index = 0
        self._records_in_active = 0
        self._open_tail()

    # -- lifecycle ---------------------------------------------------------

    def _open_tail(self) -> None:
        """Open (creating if needed) the highest-numbered segment."""
        existing = segments_in(self.root)
        if existing:
            self._active_index = existing[-1][0]
            self._active = AppendFile(existing[-1][1], self.faults)
        else:
            self._active_index = 0
            self._active = AppendFile(
                segment_path(self.root, 0), self.faults, fresh=True
            )
            fsync_dir(self._active.path)

    def close(self) -> None:
        if self._active is not None:
            self._active.close()
            self.committed = self.appended
            self._active = None

    # -- append / commit ---------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Frame and append one record; returns its sequence number.

        A torn write (armed transient device error) is repaired in
        place: the partial frame is truncated away and the record is
        re-appended — the error never surfaces to the caller and no
        record is lost or reordered.
        """
        if self._active is None:
            raise StoreError("store is closed")
        frame = encode_record(payload)
        before = self._active.written_bytes
        try:
            self._active.append(frame)
        except TornWriteError:
            # Repair: roll back the partial frame, write it again whole.
            self._active.truncate_to(before)
            self._active.append(frame)
        seq = self.appended
        self.appended += 1
        self._records_in_active += 1
        if self._active.written_bytes >= self.max_segment_bytes:
            self._rotate()
        return seq

    def commit(self) -> bool:
        """Run the fsync barrier; True when every appended record is now
        durable.  Deferred (stalled device) and failed (lost fsync)
        barriers leave ``committed`` untouched — a later barrier picks
        the volatile tail up."""
        if self._active is None:
            raise StoreError("store is closed")
        try:
            if not self._active.flush():
                self.deferred_commits += 1
                return False
        except FsyncFailedError:
            self.failed_commits += 1
            return False
        self.committed = self.appended
        self.commits += 1
        return True

    def _rotate(self) -> None:
        """Seal the active segment and open the next one.

        Rotation is a durability barrier: the finished segment is
        closed (flush + fsync) before the new one exists, so recovery
        can trust every non-final segment end-to-end.  If the barrier
        cannot complete (stall / lost fsync), rotation is deferred —
        the segment simply grows past the threshold until a barrier
        lands.
        """
        try:
            if not self._active.flush():
                return
        except FsyncFailedError:
            return
        self._active.close()
        self.committed = self.appended
        self.commits += 1
        self._active_index += 1
        self._active = AppendFile(
            segment_path(self.root, self._active_index), self.faults, fresh=True
        )
        fsync_dir(self._active.path)
        self._records_in_active = 0
        self.rotations += 1

    # -- crash / recovery --------------------------------------------------

    def crash(self, surviving_tail_bytes: int = 0) -> None:
        """Simulate the owning process dying mid-flush.

        The durable prefix survives; of the volatile tail, an arbitrary
        ``surviving_tail_bytes`` prefix survives (possibly ending inside
        a record).  The store is left closed; :meth:`recover` reopens it.
        """
        if self._active is None:
            raise StoreError("store is closed")
        self._active.crash(surviving_tail_bytes)
        self._active = None

    def recover(self) -> List[bytes]:
        """Scan all segments, truncate the torn tail, reopen for append.

        Returns every surviving record payload in append order and
        resets the sequence accounting to the recovered prefix.  Raises
        :class:`StoreError` on mid-log corruption (a bad frame in a
        non-final segment): that is silent-data-loss territory, not a
        crash artifact, and must fail loudly.
        """
        ordered = segments_in(self.root)
        payloads: List[bytes] = []
        for position, (index, path) in enumerate(ordered):
            with open(path, "rb") as fh:
                data = fh.read()
            result = scan_records(data)
            is_last = position == len(ordered) - 1
            if result.torn:
                if not is_last:
                    raise StoreError(
                        f"segment {path!r} is corrupt mid-log (not the tail "
                        "segment); refusing to recover past silent damage"
                    )
                with open(path, "r+b") as fh:
                    fh.truncate(result.clean_end)
                    fh.flush()
                    os.fsync(fh.fileno())
                self.torn_tails_truncated += 1
            payloads.extend(result.payloads)
        self.appended = len(payloads)
        self.committed = len(payloads)
        self.recoveries += 1
        self._open_tail()
        self._records_in_active = 0
        return payloads

    def read_all(self) -> List[bytes]:
        """Every record currently on disk (no truncation, no reopen)."""
        payloads: List[bytes] = []
        if self._active is not None:
            self._active._fh.flush()
        for _index, path in segments_in(self.root):
            with open(path, "rb") as fh:
                result = scan_records(fh.read())
            payloads.extend(result.payloads)
        return payloads

    @property
    def volatile_records(self) -> int:
        return self.appended - self.committed

    @property
    def segment_count(self) -> int:
        return len(segments_in(self.root))

    def report(self) -> dict:
        return {
            "appended": self.appended,
            "committed": self.committed,
            "commits": self.commits,
            "deferred_commits": self.deferred_commits,
            "failed_commits": self.failed_commits,
            "segments": self.segment_count,
            "rotations": self.rotations,
            "recoveries": self.recoveries,
            "torn_tails_truncated": self.torn_tails_truncated,
            "torn_writes_repaired": self.faults.torn_writes,
        }


class DurabilityService:
    """Write-through durability behind one :class:`ShortTermHistory`.

    The service is the unit the fault injector targets (alias →
    ``register_store``): ``disk_*`` faults arm the shared
    :class:`StorageFaults` block, ``process_kill`` calls
    :meth:`crash_and_recover`.  A shadow copy of every accepted payload
    is kept so the chaos audit can verify — not assume — that each
    recovery produced a strict prefix of what was accepted.
    """

    def __init__(
        self,
        sim,
        history,
        store: SegmentStore,
        flush_interval_s: float = 60.0,
        shadow_cap: int = 1_000_000,
    ) -> None:
        if flush_interval_s <= 0:
            raise StoreError(
                f"flush_interval_s must be positive, got {flush_interval_s}"
            )
        self.sim = sim
        self.history = history
        self.store = store
        self.flush_interval_s = flush_interval_s
        #: Records present on disk before this run attached (a reused
        #: directory archives across runs; rebuilds exclude them).
        self.base_records = store.appended
        # Shadow of this run's accepted payloads, for the prefix audit.
        self.shadow_cap = shadow_cap
        self._shadow: List[bytes] = []
        self._shadow_overflow = False
        self.prefix_consistent = True
        self.lost_committed = 0
        self.recoveries = 0
        self.recovery_wall_s = 0.0
        self._pump = None
        history.attach_store(self)
        metrics = sim.metrics
        self._m_appended = metrics.counter("store.appended")
        self._m_committed = metrics.counter("store.committed")
        self._m_recoveries = metrics.counter("store.recoveries")
        metrics.register_callback(
            "store.volatile_records", lambda: float(self.store.volatile_records)
        )
        metrics.register_callback(
            "store.segments", lambda: float(self.store.segment_count)
        )

    # -- write-through ------------------------------------------------------

    def on_sample(self, entity_id: str, attr: str, t: float, v: float) -> None:
        payload = encode_sample(entity_id, attr, t, v)
        self.store.append(payload)
        self._m_appended.inc()
        if len(self._shadow) < self.shadow_cap:
            self._shadow.append(payload)
        else:
            self._shadow_overflow = True

    # -- the sim-time fsync barrier ----------------------------------------

    def start(self) -> None:
        """Spawn the flush pump (idempotent)."""
        if self._pump is None:
            self._pump = self.sim.spawn(self._flush_loop(), name="store-flush")

    def _flush_loop(self):
        while True:
            yield self.flush_interval_s
            self.flush_now()

    def flush_now(self) -> bool:
        before = self.store.committed
        ok = self.store.commit()
        if ok:
            self._m_committed.inc(self.store.committed - before)
        return ok

    # -- crash path ---------------------------------------------------------

    def crash_and_recover(self, surviving_tail_bytes: int = 0) -> int:
        """Kill the history+store "process" and bring it back from disk.

        Everything volatile dies: unflushed store bytes (minus the
        surviving tail the crash left), the history's rings and rollup
        buckets.  Recovery truncates the torn tail, then rebuilds the
        history from this run's recovered records — the state any
        fresh process replaying the durable log would reach.  Returns
        the number of records recovered (including prior-run base).
        """
        committed_before = self.store.committed
        started = time.perf_counter()
        self.store.crash(surviving_tail_bytes)
        payloads = self.store.recover()
        self.recovery_wall_s += time.perf_counter() - started
        self.recoveries += 1
        self._m_recoveries.inc()
        if len(payloads) < committed_before:
            # A committed record failed to survive — the invariant the
            # whole store exists to uphold.  Recorded, audited, fatal
            # to the chaos run's invariant check.
            self.lost_committed += committed_before - len(payloads)
        run_payloads = payloads[self.base_records:]
        if not self._shadow_overflow:
            if run_payloads != self._shadow[: len(run_payloads)]:
                self.prefix_consistent = False
        # The accepted-but-lost tail is gone with the process; the shadow
        # restarts from the recovered prefix (post-crash appends must
        # extend it exactly).
        self._shadow = list(run_payloads)
        self.history.rebuild_from_samples(
            decode_sample(p) for p in run_payloads
        )
        return len(payloads)

    def report(self) -> dict:
        data = self.store.report()
        data.update({
            "run_records": self.store.appended - self.base_records,
            "recoveries": self.recoveries,
            "recovery_wall_s": self.recovery_wall_s,
            "lost_committed": self.lost_committed,
            "prefix_consistent": self.prefix_consistent,
        })
        return data


def attach_durable_history(
    runner,
    root: str,
    flush_interval_s: float = 60.0,
    max_segment_bytes: int = 4 * 1024 * 1024,
) -> DurabilityService:
    """Put a durable segment store behind ``runner``'s history.

    Strictly additive until the flush pump's first barrier event; with
    the option unset nothing here is constructed, so pinned fixtures are
    byte-identical.  The returned service is also assigned to
    ``runner.durability`` for the chaos audit and CLI summary.
    """
    store = SegmentStore(root, max_segment_bytes=max_segment_bytes)
    service = DurabilityService(
        runner.sim, runner.history, store, flush_interval_s=flush_interval_s
    )
    service.start()
    runner.durability = service
    return service
