"""The append-only segment store and the history durability service.

:class:`SegmentStore` is the WAL-shaped archive: records append to the
active segment (checksummed frames, see :mod:`repro.store.segment`),
an explicit :meth:`~SegmentStore.commit` runs the fsync barrier that
makes them durable, and segments rotate at a size threshold — rotation
itself is a barrier (the finished segment is fsynced before the next
one opens), so only the *last* segment can ever hold a torn tail.
:meth:`~SegmentStore.recover` is the crash path: scan every segment in
order, verify every checksum, truncate the first bad frame and
everything after it, and hand back the surviving record prefix.

:class:`DurabilityService` wires the store behind
:class:`~repro.context.history.ShortTermHistory`: every sample the
history accepts is framed and appended write-through, and a sim-time
flush process runs the commit barrier every ``flush_interval_s`` — the
"fsync barriers modeled as sim-time events" half of the design, which
keeps durability costs on the simulation clock and runs bit-identical.
On a simulated ``process_kill`` the service drops the in-memory rings
and rollups, recovers the store, and rebuilds the history from the
recovered prefix — after which reads are exactly what an uninterrupted
run truncated at the commit point would serve (the E20 property).

Everything here is **off by default**: no pilot constructs a store
unless ``RunOptions.store_dir`` (CLI ``--store``) or an explicit
:func:`attach_durable_history` call asks for one, so pinned fixtures
and the E18/E19 benchmarks are untouched.
"""

import json
import os
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.store.backend import (
    AppendFile,
    FsyncFailedError,
    StorageFaults,
    TornWriteError,
)
from repro.store.segment import (
    StoreError,
    encode_record,
    fsync_dir,
    scan_records,
    segment_path,
    segments_in,
)

__all__ = [
    "DurabilityService",
    "SegmentStore",
    "attach_durable_history",
    "decode_sample",
    "encode_sample",
]

SampleRecord = Tuple[str, str, float, float]


def encode_sample(entity_id: str, attr: str, t: float, v: float) -> bytes:
    """Canonical sample payload: compact JSON array, byte-stable."""
    return json.dumps([entity_id, attr, t, v], separators=(",", ":")).encode("utf-8")


def decode_sample(payload: bytes) -> SampleRecord:
    entity_id, attr, t, v = json.loads(payload.decode("utf-8"))
    return (entity_id, attr, float(t), float(v))


class SegmentStore:
    """Append-only, checksummed, crash-recoverable record log."""

    def __init__(
        self,
        root: str,
        max_segment_bytes: int = 4 * 1024 * 1024,
        faults: Optional[StorageFaults] = None,
    ) -> None:
        if max_segment_bytes <= 0:
            raise StoreError(f"max_segment_bytes must be positive, got {max_segment_bytes}")
        self.root = root
        self.max_segment_bytes = max_segment_bytes
        self.faults = faults if faults is not None else StorageFaults()
        os.makedirs(root, exist_ok=True)
        self.commits = 0
        self.deferred_commits = 0
        self.failed_commits = 0
        self.rotations = 0
        self.recoveries = 0
        self.torn_tails_truncated = 0
        self.dropped_segments = 0
        #: Byte length of each record in the active segment past the
        #: durable watermark is implied by the frames themselves; what we
        #: track is per-segment record counts for recovery accounting.
        self._active: Optional[AppendFile] = None
        self._active_index = 0
        self._records_in_active = 0
        self._open_tail()
        #: Records resident in the WAL (a reused directory archives
        #: across runs, so opening scans what is already there; records
        #: a compaction drains away are subtracted by ``drop_segment``).
        self.appended = 0
        #: Resident records covered by a successful barrier.
        self.committed = 0
        self._adopt_resident()

    # -- lifecycle ---------------------------------------------------------

    def _open_tail(self) -> None:
        """Open (creating if needed) the highest-numbered segment."""
        existing = segments_in(self.root)
        if existing:
            self._active_index = existing[-1][0]
            self._active = AppendFile(existing[-1][1], self.faults)
        else:
            self._active_index = 0
            self._active = AppendFile(
                segment_path(self.root, 0), self.faults, fresh=True
            )
            fsync_dir(self._active.path)

    def _adopt_resident(self) -> None:
        """Count the records already on disk (reused directory).

        Everything that survived to this open is treated as committed —
        the same stance :meth:`recover` takes — so sequence accounting
        is correct from the first append even without a recovery pass.
        """
        for index, path in segments_in(self.root):
            with open(path, "rb") as fh:
                count = len(scan_records(fh.read()).payloads)
            self.appended += count
            self.committed += count
            if index == self._active_index:
                self._records_in_active = count

    def close(self) -> None:
        if self._active is not None:
            self._active.close()
            self.committed = self.appended
            self._active = None

    # -- append / commit ---------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Frame and append one record; returns its sequence number.

        A torn write (armed transient device error) is repaired in
        place: the partial frame is truncated away and the record is
        re-appended — the error never surfaces to the caller and no
        record is lost or reordered.
        """
        if self._active is None:
            raise StoreError("store is closed")
        frame = encode_record(payload)
        before = self._active.written_bytes
        try:
            self._active.append(frame)
        except TornWriteError:
            # Repair: roll back the partial frame, write it again whole.
            self._active.truncate_to(before)
            self._active.append(frame)
        seq = self.appended
        self.appended += 1
        self._records_in_active += 1
        if self._active.written_bytes >= self.max_segment_bytes:
            self._rotate()
        return seq

    def commit(self) -> bool:
        """Run the fsync barrier; True when every appended record is now
        durable.  Deferred (stalled device) and failed (lost fsync)
        barriers leave ``committed`` untouched — a later barrier picks
        the volatile tail up."""
        if self._active is None:
            raise StoreError("store is closed")
        try:
            if not self._active.flush():
                self.deferred_commits += 1
                return False
        except FsyncFailedError:
            self.failed_commits += 1
            return False
        self.committed = self.appended
        self.commits += 1
        return True

    def _rotate(self) -> None:
        """Seal the active segment and open the next one.

        Rotation is a durability barrier: the finished segment is
        closed (flush + fsync) before the new one exists, so recovery
        can trust every non-final segment end-to-end.  If the barrier
        cannot complete (stall / lost fsync), rotation is deferred —
        the segment simply grows past the threshold until a barrier
        lands.
        """
        try:
            if not self._active.flush():
                return
        except FsyncFailedError:
            return
        self._active.close()
        self.committed = self.appended
        self.commits += 1
        self._active_index += 1
        self._active = AppendFile(
            segment_path(self.root, self._active_index), self.faults, fresh=True
        )
        fsync_dir(self._active.path)
        self._records_in_active = 0
        self.rotations += 1

    # -- crash / recovery --------------------------------------------------

    def crash(self, surviving_tail_bytes: int = 0) -> None:
        """Simulate the owning process dying mid-flush.

        The durable prefix survives; of the volatile tail, an arbitrary
        ``surviving_tail_bytes`` prefix survives (possibly ending inside
        a record).  The store is left closed; :meth:`recover` reopens it.
        """
        if self._active is None:
            raise StoreError("store is closed")
        self._active.crash(surviving_tail_bytes)
        self._active = None

    def recover(self) -> List[bytes]:
        """Scan all segments, truncate the torn tail, reopen for append.

        Returns every surviving record payload in append order and
        resets the sequence accounting to the recovered prefix.  Raises
        :class:`StoreError` on mid-log corruption (a bad frame in a
        non-final segment): that is silent-data-loss territory, not a
        crash artifact, and must fail loudly.
        """
        ordered = segments_in(self.root)
        payloads: List[bytes] = []
        for position, (index, path) in enumerate(ordered):
            with open(path, "rb") as fh:
                data = fh.read()
            result = scan_records(data)
            is_last = position == len(ordered) - 1
            if result.torn:
                if not is_last:
                    raise StoreError(
                        f"segment {path!r} is corrupt mid-log (not the tail "
                        "segment); refusing to recover past silent damage"
                    )
                with open(path, "r+b") as fh:
                    fh.truncate(result.clean_end)
                    fh.flush()
                    os.fsync(fh.fileno())
                self.torn_tails_truncated += 1
            payloads.extend(result.payloads)
        self.appended = len(payloads)
        self.committed = len(payloads)
        self.recoveries += 1
        self._open_tail()
        self._records_in_active = 0
        return payloads

    def read_all(self) -> List[bytes]:
        """Every record currently on disk (no truncation, no reopen)."""
        payloads: List[bytes] = []
        if self._active is not None:
            self._active._fh.flush()
        for _index, path in segments_in(self.root):
            with open(path, "rb") as fh:
                result = scan_records(fh.read())
            payloads.extend(result.payloads)
        return payloads

    # -- compaction handoff --------------------------------------------------

    def sealed_segments(self) -> List[Tuple[int, str]]:
        """Every segment but the active one, ordered.

        Rotation is a durability barrier, so a sealed segment is intact
        and fully committed — the unit compaction drains.
        """
        return [
            (index, path)
            for index, path in segments_in(self.root)
            if index != self._active_index
        ]

    def drop_segment(self, index: int, records: int) -> None:
        """Remove a sealed segment whose ``records`` now live elsewhere.

        The compaction side of the handoff: called only after the chunk
        is sealed and the meta blob records the advance.  Resident
        counters shrink by ``records``; global sequence numbers are the
        columnar meta's ``wal_base_seq`` plus these resident counters.
        Usable while crashed (recovery reconciles before reopening).
        """
        if self._active is not None and index == self._active_index:
            raise StoreError(f"refusing to drop the active segment {index}")
        path = segment_path(self.root, index)
        if os.path.exists(path):
            os.unlink(path)
            fsync_dir(path)
        self.appended = max(0, self.appended - records)
        self.committed = max(0, self.committed - records)
        self.dropped_segments += 1

    @property
    def volatile_records(self) -> int:
        return self.appended - self.committed

    @property
    def segment_count(self) -> int:
        return len(segments_in(self.root))

    def report(self) -> dict:
        return {
            "appended": self.appended,
            "committed": self.committed,
            "commits": self.commits,
            "deferred_commits": self.deferred_commits,
            "failed_commits": self.failed_commits,
            "segments": self.segment_count,
            "rotations": self.rotations,
            "recoveries": self.recoveries,
            "dropped_segments": self.dropped_segments,
            "torn_tails_truncated": self.torn_tails_truncated,
            "torn_writes_repaired": self.faults.torn_writes,
        }


class DurabilityService:
    """Write-through durability behind one :class:`ShortTermHistory`.

    The service is the unit the fault injector targets (alias →
    ``register_store``): ``disk_*`` faults arm the shared
    :class:`StorageFaults` block, ``process_kill`` calls
    :meth:`crash_and_recover`.  A shadow copy of every accepted payload
    is kept so the chaos audit can verify — not assume — that each
    recovery produced a strict prefix of what was accepted.
    """

    def __init__(
        self,
        sim,
        history,
        store: SegmentStore,
        flush_interval_s: float = 60.0,
        shadow_cap: int = 1_000_000,
    ) -> None:
        if flush_interval_s <= 0:
            raise StoreError(
                f"flush_interval_s must be positive, got {flush_interval_s}"
            )
        self.sim = sim
        self.history = history
        self.store = store
        self.flush_interval_s = flush_interval_s
        #: Records present on disk before this run attached (a reused
        #: directory archives across runs; rebuilds exclude them).
        self.base_records = store.appended
        #: Global sequence number of this run's first sample — the shadow
        #: audit anchor.  Without compaction this equals ``base_records``;
        #: :meth:`enable_compaction` rebases it onto the columnar meta's
        #: ``wal_base_seq``.
        self._run_first_seq = store.appended
        self.run_appended = 0
        #: Optional :class:`~repro.store.columnar.CompactionService`.
        self.compaction = None
        # Shadow of this run's accepted payloads, for the prefix audit.
        self.shadow_cap = shadow_cap
        self._shadow: List[bytes] = []
        self._shadow_overflow = False
        self.prefix_consistent = True
        self.lost_committed = 0
        self.recoveries = 0
        self.recovery_wall_s = 0.0
        self.coalesced_flushes = 0
        self._last_flush_t = None
        self._pump = None
        history.set_sink(self)
        metrics = sim.metrics
        self._m_appended = metrics.counter("store.appended")
        self._m_committed = metrics.counter("store.committed")
        self._m_recoveries = metrics.counter("store.recoveries")
        metrics.register_callback(
            "store.volatile_records", lambda: float(self.store.volatile_records)
        )
        metrics.register_callback(
            "store.segments", lambda: float(self.store.segment_count)
        )

    # -- write-through ------------------------------------------------------

    def on_sample(self, entity_id: str, attr: str, t: float, v: float) -> None:
        payload = encode_sample(entity_id, attr, t, v)
        self.store.append(payload)
        self._m_appended.inc()
        self.run_appended += 1
        if len(self._shadow) < self.shadow_cap:
            self._shadow.append(payload)
        else:
            self._shadow_overflow = True

    # -- the sim-time fsync barrier ----------------------------------------

    def start(self) -> None:
        """Spawn the flush pump (idempotent)."""
        if self._pump is None:
            self._pump = self.sim.spawn(self._flush_loop(), name="store-flush")

    def _flush_loop(self):
        while True:
            yield self.flush_interval_s
            self.flush_now()

    def flush_now(self) -> bool:
        now = self.sim.now
        if (self._last_flush_t == now
                and self.store.volatile_records == 0
                and self.store._active is not None):
            # A barrier already landed at this sim timestamp and nothing
            # volatile arrived since — running the fsync again would be
            # a redundant event (back-to-back barriers from the pump plus
            # an explicit flush, or compaction, at the same instant).
            self.coalesced_flushes += 1
            return True
        before = self.store.committed
        ok = self.store.commit()
        if ok:
            self._last_flush_t = now
            self._m_committed.inc(self.store.committed - before)
        return ok

    # -- compaction ---------------------------------------------------------

    def enable_compaction(
        self,
        interval_s: float = 3600.0,
        block_size: int = 512,
        retention=None,
    ):
        """Attach (idempotently) the columnar compaction service.

        Spawns its sim-time pump, binds the columnar reader behind the
        history's ``source="auto"`` reads, and rebases the shadow-audit
        anchor onto the global (WAL + chunks) sequence space.  Returns
        the :class:`~repro.store.columnar.CompactionService`.
        """
        if self.compaction is None:
            from repro.store.columnar import CompactionService

            self.compaction = CompactionService(
                self.sim, self, interval_s=interval_s,
                block_size=block_size, retention=retention,
            )
            self.compaction.start()
            self._run_first_seq = (
                self.compaction.columnar.wal_base_seq
                + self.store.appended - self.run_appended
            )
            self.history.bind_columnar(self.compaction.reader)
        return self.compaction

    # -- crash path ---------------------------------------------------------

    def crash_and_recover(self, surviving_tail_bytes: int = 0) -> int:
        """Kill the history+store "process" and bring it back from disk.

        Everything volatile dies: unflushed store bytes (minus the
        surviving tail the crash left), the history's rings and rollup
        buckets.  Recovery reconciles the WAL↔chunk handoff (when
        compaction is attached), truncates the WAL's torn tail, then
        rebuilds the history from every durable record — retained
        chunks first, WAL tail after, in global append order — the
        state any fresh process replaying the durable data would
        reach.  Returns the number of records recovered (including
        prior-run base and compacted chunks).
        """
        base_seq = (0 if self.compaction is None
                    else self.compaction.columnar.wal_base_seq)
        committed_before = base_seq + self.store.committed
        if self.compaction is not None:
            # A kill between the compaction meta advance and the segment
            # delete leaves records counted on both sides of the handoff
            # (in wal_base_seq *and* still WAL-resident); subtract the
            # stale overlap so the loss oracle is exact.
            next_segment = self.compaction.columnar.next_segment
            for index, path in self.store.sealed_segments():
                if index < next_segment:
                    with open(path, "rb") as fh:
                        committed_before -= len(
                            scan_records(fh.read()).payloads)
        started = time.perf_counter()
        self.store.crash(surviving_tail_bytes)
        if self.compaction is not None:
            self.compaction.recover()
        wal_payloads = self.store.recover()
        self.recovery_wall_s += time.perf_counter() - started
        self.recoveries += 1
        self._m_recoveries.inc()
        # Reassemble the durable sequence: retained chunks (ascending,
        # gaps only where retention dropped whole chunks) then the WAL.
        recovered: List[Tuple[int, bytes]] = []
        if self.compaction is not None:
            columnar = self.compaction.columnar
            for index in columnar.chunk_indexes():
                chunk = columnar.read_chunk(index)
                seq = chunk.header["first_seq"]
                for entity_id, attr, t, v in chunk.iter_records():
                    recovered.append((seq, encode_sample(entity_id, attr, t, v)))
                    seq += 1
            base_seq = columnar.wal_base_seq
        for offset, payload in enumerate(wal_payloads):
            recovered.append((base_seq + offset, payload))
        recovered_end = base_seq + len(wal_payloads)
        if recovered_end < committed_before:
            # A committed record failed to survive — the invariant the
            # whole store exists to uphold.  Recorded, audited, fatal
            # to the chaos run's invariant check.
            self.lost_committed += committed_before - recovered_end
        if not self._shadow_overflow:
            for seq, payload in recovered:
                if seq < self._run_first_seq:
                    continue
                pos = seq - self._run_first_seq
                if pos >= len(self._shadow) or self._shadow[pos] != payload:
                    self.prefix_consistent = False
                    break
        # The accepted-but-lost tail is gone with the process; the shadow
        # restarts from the longest contiguous recovered suffix of this
        # run's records (post-crash appends must extend it exactly).
        suffix: List[bytes] = []
        next_expected = recovered_end
        for seq, payload in reversed(recovered):
            if seq != next_expected - 1 or seq < self._run_first_seq:
                break
            suffix.append(payload)
            next_expected = seq
        suffix.reverse()
        self._shadow = suffix
        self._run_first_seq = recovered_end - len(suffix)
        self.run_appended = len(suffix)
        self.history.rebuild_from_samples(
            decode_sample(payload) for _seq, payload in recovered
        )
        return len(recovered)

    def report(self) -> dict:
        data = self.store.report()
        data.update({
            "run_records": self.run_appended,
            "recoveries": self.recoveries,
            "recovery_wall_s": self.recovery_wall_s,
            "lost_committed": self.lost_committed,
            "prefix_consistent": self.prefix_consistent,
            "coalesced_flushes": self.coalesced_flushes,
        })
        if self.compaction is not None:
            data["compaction"] = self.compaction.report()
        return data


def attach_durable_history(
    runner,
    root: str,
    flush_interval_s: float = 60.0,
    max_segment_bytes: int = 4 * 1024 * 1024,
    compact_interval_s: Optional[float] = None,
    compact_block_size: int = 512,
    retention=None,
) -> DurabilityService:
    """Put a durable segment store behind ``runner``'s history.

    Strictly additive until the flush pump's first barrier event; with
    the option unset nothing here is constructed, so pinned fixtures are
    byte-identical.  ``compact_interval_s`` (or a ``retention`` config)
    additionally enables the columnar compaction service, which binds
    streaming chunk reads behind the history's ``source="auto"`` path.
    The returned service is also assigned to ``runner.durability`` for
    the chaos audit and CLI summary.
    """
    store = SegmentStore(root, max_segment_bytes=max_segment_bytes)
    service = DurabilityService(
        runner.sim, runner.history, store, flush_interval_s=flush_interval_s
    )
    service.start()
    if compact_interval_s is not None or retention is not None:
        service.enable_compaction(
            interval_s=(compact_interval_s
                        if compact_interval_s is not None else 3600.0),
            block_size=compact_block_size,
            retention=retention,
        )
    runner.durability = service
    return service
