"""Crash-safe append-only segment store (durable history archive).

See :mod:`repro.store.segment` for the on-disk frame format,
:mod:`repro.store.backend` for the fault-injectable file layer, and
:mod:`repro.store.durable` for the store itself plus the glue that puts
it behind :class:`~repro.context.history.ShortTermHistory`.
"""

from repro.store.backend import (
    AppendFile,
    FsyncFailedError,
    StorageFaults,
    TornWriteError,
)
from repro.store.durable import (
    DurabilityService,
    SegmentStore,
    attach_durable_history,
    decode_sample,
    encode_sample,
)
from repro.store.segment import (
    CorruptBlobError,
    SEALED_MAGIC,
    SEGMENT_MAGIC,
    ScanResult,
    StoreError,
    encode_record,
    read_sealed,
    scan_records,
    write_sealed,
)

__all__ = [
    "AppendFile",
    "CorruptBlobError",
    "DurabilityService",
    "FsyncFailedError",
    "SEALED_MAGIC",
    "SEGMENT_MAGIC",
    "ScanResult",
    "SegmentStore",
    "StorageFaults",
    "StoreError",
    "TornWriteError",
    "attach_durable_history",
    "decode_sample",
    "encode_record",
    "encode_sample",
    "read_sealed",
    "scan_records",
    "write_sealed",
]
