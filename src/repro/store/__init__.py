"""Crash-safe append-only segment store (durable history archive).

See :mod:`repro.store.segment` for the on-disk frame format,
:mod:`repro.store.backend` for the fault-injectable file layer,
:mod:`repro.store.durable` for the store itself plus the glue that puts
it behind :class:`~repro.context.history.ShortTermHistory`, and
:mod:`repro.store.columnar` for the compacted columnar read path
(chunk files with zone maps, sim-time compaction, per-tenant retention).
"""

from repro.store.backend import (
    AppendFile,
    FsyncFailedError,
    StorageFaults,
    TornWriteError,
)
from repro.store.columnar import (
    ColumnarReader,
    ColumnarStore,
    CompactionKilled,
    CompactionService,
    RetentionConfig,
    RetentionPolicy,
    decode_chunk,
    encode_chunk,
    open_columnar_reader,
)
from repro.store.durable import (
    DurabilityService,
    SegmentStore,
    attach_durable_history,
    decode_sample,
    encode_sample,
)
from repro.store.segment import (
    CorruptBlobError,
    SEALED_MAGIC,
    SEGMENT_MAGIC,
    ScanResult,
    StoreError,
    encode_record,
    read_sealed,
    scan_records,
    write_sealed,
)

__all__ = [
    "AppendFile",
    "ColumnarReader",
    "ColumnarStore",
    "CompactionKilled",
    "CompactionService",
    "CorruptBlobError",
    "DurabilityService",
    "FsyncFailedError",
    "RetentionConfig",
    "RetentionPolicy",
    "SEALED_MAGIC",
    "SEGMENT_MAGIC",
    "ScanResult",
    "SegmentStore",
    "StorageFaults",
    "StoreError",
    "TornWriteError",
    "attach_durable_history",
    "decode_chunk",
    "decode_sample",
    "encode_chunk",
    "encode_record",
    "encode_sample",
    "open_columnar_reader",
    "read_sealed",
    "scan_records",
    "write_sealed",
]
