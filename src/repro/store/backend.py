"""Fault-injectable append-only file I/O.

Real storage fails in ways an append-only store must survive: a write
can land partially (torn), an fsync can fail (and post-fsyncgate, a
failed fsync means the data's durability is *unknown* — the only safe
reaction is to treat it as not durable), a device can stall, and the
process can die mid-flush.  :class:`AppendFile` wraps one segment file
with exactly those failure modes, armed through a shared
:class:`StorageFaults` control block that the fault injector pokes
(``disk_torn_write`` / ``disk_stall`` / ``fsync_lost`` /
``process_kill`` plans).

The accounting contract the store builds on:

* ``written_bytes`` — everything handed to the OS (buffered or on disk);
* ``durable_bytes`` — everything covered by a successful fsync barrier.

On a simulated process kill, the bytes that survive are
``durable_bytes`` plus an *arbitrary* prefix of the unflushed tail
(:meth:`AppendFile.crash`) — the OS may have written any amount of the
buffered data before the crash, including half a record.  Recovery's
checksum scan is what turns that arbitrary tail back into a
prefix-consistent record sequence.
"""

import os
from typing import Optional

from repro.store.segment import SEGMENT_MAGIC, StoreError

__all__ = [
    "AppendFile",
    "FsyncFailedError",
    "StorageFaults",
    "TornWriteError",
]


class TornWriteError(StoreError):
    """An append landed only partially (transient device error)."""


class FsyncFailedError(StoreError):
    """An fsync barrier failed; the covered bytes must be treated as
    NOT durable (the fail-stop reading of fsyncgate)."""


class StorageFaults:
    """Shared control block for injected storage failures.

    One instance is shared by every :class:`AppendFile` a store opens, so
    a fault plan targets the *store*, not a particular segment.  All
    flags are plain state — arming one draws no randomness and schedules
    nothing, keeping fault-free runs bit-identical.
    """

    __slots__ = (
        "torn_write_armed",
        "torn_write_fraction",
        "stalled",
        "fsync_lost",
        "torn_writes",
        "stalled_flushes",
        "failed_fsyncs",
    )

    def __init__(self) -> None:
        self.torn_write_armed = False
        self.torn_write_fraction = 0.5
        self.stalled = False
        self.fsync_lost = False
        # Accounting (read by telemetry and the chaos audit).
        self.torn_writes = 0
        self.stalled_flushes = 0
        self.failed_fsyncs = 0

    def arm_torn_write(self, fraction: float = 0.5) -> None:
        """Tear the next append: only ``fraction`` of its bytes land."""
        self.torn_write_armed = True
        self.torn_write_fraction = min(max(fraction, 0.0), 1.0)


class AppendFile:
    """One append-only segment file with injectable failure modes."""

    __slots__ = ("path", "faults", "written_bytes", "durable_bytes", "_fh")

    def __init__(self, path: str, faults: Optional[StorageFaults] = None,
                 fresh: bool = False) -> None:
        self.path = path
        self.faults = faults if faults is not None else StorageFaults()
        if fresh or not os.path.exists(path):
            with open(path, "wb") as fh:
                fh.write(SEGMENT_MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
            size = len(SEGMENT_MAGIC)
        else:
            size = os.path.getsize(path)
        self._fh = open(path, "r+b")
        self._fh.seek(size)
        self.written_bytes = size
        self.durable_bytes = size

    # -- writes -----------------------------------------------------------

    def append(self, data: bytes) -> None:
        """Hand ``data`` to the OS; raises :class:`TornWriteError` when a
        torn write is armed (after landing the partial prefix, exactly
        like a device that errored mid-DMA)."""
        faults = self.faults
        if faults.torn_write_armed:
            faults.torn_write_armed = False
            faults.torn_writes += 1
            keep = int(len(data) * faults.torn_write_fraction)
            self._fh.write(data[:keep])
            self.written_bytes += keep
            raise TornWriteError(
                f"write tore after {keep}/{len(data)} bytes at offset "
                f"{self.written_bytes - keep} of {self.path!r}"
            )
        self._fh.write(data)
        self.written_bytes += len(data)

    def truncate_to(self, size: int) -> None:
        """Roll the file back to ``size`` bytes (torn-write repair)."""
        if size < self.durable_bytes:
            raise StoreError(
                f"cannot truncate {self.path!r} below its durable prefix "
                f"({size} < {self.durable_bytes})"
            )
        self._fh.flush()
        self._fh.truncate(size)
        self._fh.seek(size)
        self.written_bytes = size

    # -- durability barrier -----------------------------------------------

    def flush(self) -> bool:
        """Run an fsync barrier; True when the barrier committed.

        A stalled device defers the barrier (False, nothing lost, nothing
        durable).  A lost fsync raises :class:`FsyncFailedError`; the
        caller must keep treating the covered bytes as volatile and retry
        a later barrier — the durable watermark never moves on a failed
        fsync.
        """
        faults = self.faults
        if faults.stalled:
            faults.stalled_flushes += 1
            return False
        self._fh.flush()
        if faults.fsync_lost:
            faults.failed_fsyncs += 1
            raise FsyncFailedError(
                f"fsync of {self.path!r} failed; "
                f"{self.written_bytes - self.durable_bytes} bytes remain volatile"
            )
        os.fsync(self._fh.fileno())
        self.durable_bytes = self.written_bytes
        return True

    # -- crash simulation --------------------------------------------------

    def crash(self, surviving_tail_bytes: int = 0) -> None:
        """Kill the process mid-flush: keep the durable prefix plus an
        arbitrary ``surviving_tail_bytes`` of the unflushed tail.

        Closes the handle; the file is what a post-crash reopen would
        find.  The surviving tail can end mid-record — recovery's
        checksum scan handles that.
        """
        keep = self.durable_bytes + max(
            0, min(surviving_tail_bytes, self.written_bytes - self.durable_bytes)
        )
        self._fh.flush()
        self._fh.truncate(keep)
        self._fh.close()

    def close(self) -> None:
        """Clean shutdown: final barrier, then close."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.durable_bytes = self.written_bytes
        self._fh.close()

    @property
    def volatile_bytes(self) -> int:
        """Bytes written but not yet covered by a barrier."""
        return self.written_bytes - self.durable_bytes
