"""On-disk record framing for the durable store (and sealed blobs).

The segment store's unit of durability is the **record**: a little-endian
``<payload length, CRC32(payload)>`` header followed by the payload
bytes.  A segment file is the 4-byte magic :data:`SEGMENT_MAGIC` followed
by zero or more records; nothing else.  Because every record carries its
own checksum, recovery after a crash is a single forward scan
(:func:`scan_records`): read records while headers and checksums verify,
stop at the first short or corrupt frame, and truncate there — the
classic WAL torn-tail rule.  A record is *committed* once an fsync
barrier has covered it; :func:`scan_records` can only ever return a
prefix of what was appended, so recovery is prefix-consistent by
construction.

Sealed blobs (:func:`write_sealed` / :func:`read_sealed`) reuse the same
frame for whole-file artifacts — one checksummed record written to a
temp file, fsynced, atomically renamed over the target, directory
fsynced.  Checkpoint saves go through this path so a checkpoint torn
mid-write is *detected* at load (bad CRC / short frame) instead of
silently unpickling garbage.
"""

import os
import struct
import zlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.simkernel.errors import ReproError

__all__ = [
    "CorruptBlobError",
    "RECORD_HEADER",
    "SEGMENT_MAGIC",
    "SEALED_MAGIC",
    "ScanResult",
    "StoreError",
    "encode_record",
    "fsync_dir",
    "read_sealed",
    "scan_records",
    "segment_path",
    "segments_in",
    "write_sealed",
]

#: First 4 bytes of every segment file.
SEGMENT_MAGIC = b"SWS1"
#: First 4 bytes of a sealed single-blob file (checkpoints).
SEALED_MAGIC = b"SWB1"
#: Per-record frame header: payload length, CRC32 of the payload.
RECORD_HEADER = struct.Struct("<II")


class StoreError(ReproError):
    """Base error for the durable segment store."""


class CorruptBlobError(StoreError):
    """A sealed blob failed its frame or checksum verification."""


def encode_record(payload: bytes) -> bytes:
    """Frame ``payload`` as one checksummed record."""
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class ScanResult:
    """What a recovery scan found in one segment's bytes."""

    #: Every record that verified, in append order.
    payloads: List[bytes]
    #: Byte offset just past the last verified record (the truncate point).
    clean_end: int
    #: True when trailing bytes past ``clean_end`` had to be discarded.
    torn: bool


def scan_records(data: bytes, offset: int = len(SEGMENT_MAGIC)) -> ScanResult:
    """Forward-scan ``data`` from ``offset``, stopping at the first bad frame.

    Never raises on torn or corrupt tails — that is the *expected* state
    after a crash; the caller truncates to ``clean_end``.  A short or
    missing magic is treated as an empty, torn segment (a crash can land
    between file creation and the magic write).
    """
    if len(data) < offset or data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        return ScanResult([], 0, torn=bool(data))
    payloads: List[bytes] = []
    pos = offset
    header_size = RECORD_HEADER.size
    total = len(data)
    while pos + header_size <= total:
        length, crc = RECORD_HEADER.unpack_from(data, pos)
        end = pos + header_size + length
        if end > total:
            break  # torn tail: header landed, payload didn't
        payload = data[pos + header_size : end]
        if zlib.crc32(payload) != crc:
            break  # corrupt frame: stop, discard the rest
        payloads.append(payload)
        pos = end
    return ScanResult(payloads, pos, torn=pos != total)


def fsync_dir(path: str) -> None:
    """Fsync the directory containing ``path`` (durability of the rename)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_sealed(path: str, payload: bytes) -> None:
    """Atomically write ``payload`` as a sealed, checksummed blob.

    The full write barrier: temp file, flush, **fsync**, rename over
    ``path``, fsync the directory.  A crash at any point leaves either
    the old file, no file, or a temp file recovery ignores — never a
    half-written ``path``.
    """
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as fh:
        fh.write(SEALED_MAGIC)
        fh.write(encode_record(payload))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    fsync_dir(path)


def read_sealed(path: str) -> bytes:
    """Read a sealed blob, raising :class:`CorruptBlobError` on damage."""
    with open(path, "rb") as fh:
        data = fh.read()
    if data[: len(SEALED_MAGIC)] != SEALED_MAGIC:
        raise CorruptBlobError(f"{path!r} is not a sealed blob (bad magic)")
    result = scan_records(SEGMENT_MAGIC + data[len(SEALED_MAGIC):])
    if len(result.payloads) != 1 or result.torn:
        raise CorruptBlobError(
            f"{path!r} is torn or corrupt "
            f"({len(result.payloads)} intact records, torn={result.torn})"
        )
    return result.payloads[0]


def segments_in(root: str) -> List[Tuple[int, str]]:
    """``(index, path)`` for every segment file under ``root``, ordered."""
    out: List[Tuple[int, str]] = []
    for name in os.listdir(root):
        if name.startswith("seg-") and name.endswith(".log"):
            try:
                index = int(name[4:-4])
            except ValueError:
                continue
            out.append((index, os.path.join(root, name)))
    out.sort()
    return out


def segment_path(root: str, index: int) -> str:
    return os.path.join(root, f"seg-{index:08d}.log")
