"""Columnar chunk files and sim-time WAL compaction.

The durable store's write half is the append-only WAL
(:class:`~repro.store.durable.SegmentStore`); this module is the read
half.  A :class:`CompactionService` runs on the simulation clock and
drains **sealed** WAL segments (every segment but the active one — the
rotation barrier guarantees they are fully committed) into sealed
columnar **chunk files**: one chunk per segment, records regrouped into
per-(entity, attribute) float64 time/value columns with
``count/min(t)/max(t)/min(v)/max(v)/sum(v)`` **zone maps** per fixed-size
time block, plus a per-record series-index *order array* so the exact
global append order can be reconstructed.  Rollup, range, lastN and
aggregate queries then stream from chunks with zone-map pruning
(:class:`ColumnarReader`) instead of rebuilding the whole history in
memory — and because pruning only ever *skips* blocks that cannot match
(never substitutes zone-map aggregates for the samples), every fold
happens in append order and results are bit-identical to the in-memory
path wherever both retain the data.

**Crash-safe handoff.**  A segment is deleted only after its chunk is
sealed (tmp → fsync → rename → dir-fsync, the
:func:`~repro.store.segment.write_sealed` barrier) *and* the meta blob
records the advance.  The ordering is::

    seal chunk  →  write meta (wal_base_seq += n, next_segment += 1)  →  delete segment

so :func:`reconcile` can replay any crash point idempotently: an orphan
chunk (sealed, meta not advanced) is adopted; a stale segment (meta
advanced, file not deleted) is dropped; a chunk the meta marked for
retention-drop but that survived the crash is unlinked.  No record is
ever served twice or lost across the boundary — the chaos audit checks
this via :meth:`CompactionService.audit`.

**Retention.**  :class:`RetentionPolicy` (max age / max bytes) applies
per tenant — longest matching entity-id prefix wins, ``default``
otherwise.  Enforcement happens at compaction time on the sim clock, as
deterministic whole-chunk drops oldest-first: a chunk is dropped only
when *every* tenant owning samples in it allows the drop (age horizon
passed, or that tenant's byte budget is exceeded); disagreements are
counted in ``retention_blocked_chunks``.  Drops are audited per tenant
(chunks/records/bytes) and recorded in the meta blob before any file is
unlinked, so the accounting survives crashes.
"""

import json
import math
import os
import struct
from dataclasses import dataclass
from itertools import chain
from typing import Dict, Iterator, List, Optional, Tuple

from repro.context.history import HistoryQuery, HistoryResult
from repro.store.durable import SegmentStore, decode_sample
from repro.store.segment import (
    StoreError,
    fsync_dir,
    read_sealed,
    scan_records,
    segments_in,
    write_sealed,
)

__all__ = [
    "ColumnarReader",
    "ColumnarStore",
    "CompactionKilled",
    "CompactionService",
    "RetentionConfig",
    "RetentionPolicy",
    "chunk_path",
    "chunks_in",
    "decode_chunk",
    "encode_chunk",
    "open_columnar_reader",
    "reconcile",
]

#: First 4 bytes of every columnar chunk payload.
CHUNK_MAGIC = b"SWC1"
#: The compaction meta blob (sealed): WAL/chunk handoff + retention state.
META_FILE = "columnar-meta.blob"
#: Samples per zone-map block within one series column.
DEFAULT_BLOCK_SIZE = 512
#: Deterministic on-disk cost of one sample in a chunk (two float64
#: columns plus the order-array slot) — the unit retention byte budgets
#: are charged in, so budget decisions never depend on JSON header size.
SAMPLE_BYTES = 20

_CHUNK_HEADER_LEN = struct.Struct("<I")


class CompactionKilled(StoreError):
    """Simulated process death at an armed compaction crash point."""


def chunk_path(root: str, index: int) -> str:
    return os.path.join(root, f"chunk-{index:08d}.col")


def chunks_in(root: str) -> List[Tuple[int, str]]:
    """``(index, path)`` for every chunk file under ``root``, ordered."""
    out: List[Tuple[int, str]] = []
    for name in os.listdir(root):
        if name.startswith("chunk-") and name.endswith(".col"):
            try:
                index = int(name[6:-4])
            except ValueError:
                continue
            out.append((index, os.path.join(root, name)))
    out.sort()
    return out


# -- chunk codec -------------------------------------------------------------


def encode_chunk(
    segment_index: int,
    first_seq: int,
    samples: List[Tuple[str, str, float, float]],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> bytes:
    """Encode ``samples`` (global append order) as one chunk payload.

    Layout: magic, ``<u32 header_len>``, canonical-JSON header (series
    directory with zone-map blocks), then per series — in first-
    appearance order — the packed float64 time column and value column,
    and finally the ``<u32>`` order array mapping each record position
    back to its series.  Float64 packing round-trips exactly, so a
    decoded chunk re-encodes every sample byte-identically.
    """
    if block_size <= 0:
        raise StoreError(f"block_size must be positive, got {block_size}")
    series_order: Dict[Tuple[str, str], int] = {}
    columns: List[Tuple[List[float], List[float]]] = []
    order: List[int] = []
    for entity_id, attr, t, v in samples:
        key = (entity_id, attr)
        idx = series_order.get(key)
        if idx is None:
            idx = series_order[key] = len(columns)
            columns.append(([], []))
        columns[idx][0].append(t)
        columns[idx][1].append(v)
        order.append(idx)
    series_meta = []
    body = bytearray()
    for (entity_id, attr), idx in series_order.items():
        times, values = columns[idx]
        blocks = []
        for start in range(0, len(times), block_size):
            block_t = times[start:start + block_size]
            block_v = values[start:start + block_size]
            vmin = vmax = block_v[0]
            vsum = 0.0
            for v in block_v:  # left fold in append order, like the rollups
                if v < vmin:
                    vmin = v
                if v > vmax:
                    vmax = v
                vsum += v
            blocks.append(
                [len(block_t), min(block_t), max(block_t), vmin, vmax, vsum]
            )
        series_meta.append({
            "entity": entity_id,
            "attr": attr,
            "count": len(times),
            "blocks": blocks,
        })
        body += struct.pack(f"<{len(times)}d", *times)
        body += struct.pack(f"<{len(values)}d", *values)
    body += struct.pack(f"<{len(order)}I", *order)
    header = {
        "version": 1,
        "segment": segment_index,
        "first_seq": first_seq,
        "records": len(samples),
        "block_size": block_size,
        "series": series_meta,
    }
    hjson = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return CHUNK_MAGIC + _CHUNK_HEADER_LEN.pack(len(hjson)) + hjson + body


def _header_and_offset(payload: bytes) -> Tuple[dict, int]:
    if payload[: len(CHUNK_MAGIC)] != CHUNK_MAGIC:
        raise StoreError("not a columnar chunk (bad magic)")
    offset = len(CHUNK_MAGIC)
    (hlen,) = _CHUNK_HEADER_LEN.unpack_from(payload, offset)
    offset += _CHUNK_HEADER_LEN.size
    header = json.loads(payload[offset:offset + hlen].decode("utf-8"))
    return header, offset + hlen


def chunk_header(payload: bytes) -> dict:
    """Decode only a chunk's JSON header (cheap; no column unpacking)."""
    return _header_and_offset(payload)[0]


@dataclass
class ChunkData:
    """One decoded chunk: the header plus unpacked columns."""

    header: dict
    #: (entity_id, attr) -> (times, values), each in append order.
    series: Dict[Tuple[str, str], Tuple[tuple, tuple]]
    #: Per-record series index, in global append order.
    order: tuple
    #: Series keys in first-appearance (= column) order.
    keys: List[Tuple[str, str]]

    def iter_records(self) -> Iterator[Tuple[str, str, float, float]]:
        """Yield ``(entity_id, attr, t, v)`` in global append order."""
        cursors = [0] * len(self.keys)
        cols = [self.series[key] for key in self.keys]
        for idx in self.order:
            pos = cursors[idx]
            cursors[idx] = pos + 1
            times, values = cols[idx]
            yield self.keys[idx] + (times[pos], values[pos])


def decode_chunk(payload: bytes) -> ChunkData:
    header, offset = _header_and_offset(payload)
    expected = (offset
                + sum(16 * entry["count"] for entry in header["series"])
                + 4 * header["records"])
    if len(payload) != expected:
        raise StoreError(
            f"chunk payload length mismatch: header promises {expected} "
            f"bytes, got {len(payload)}"
        )
    series: Dict[Tuple[str, str], Tuple[tuple, tuple]] = {}
    keys: List[Tuple[str, str]] = []
    for entry in header["series"]:
        count = entry["count"]
        times = struct.unpack_from(f"<{count}d", payload, offset)
        offset += 8 * count
        values = struct.unpack_from(f"<{count}d", payload, offset)
        offset += 8 * count
        key = (entry["entity"], entry["attr"])
        series[key] = (times, values)
        keys.append(key)
    order = struct.unpack_from(f"<{header['records']}I", payload, offset)
    return ChunkData(header, series, order, keys)


# -- retention ---------------------------------------------------------------


@dataclass(frozen=True)
class RetentionPolicy:
    """How long / how much columnar history one tenant may keep.

    ``None`` means unbounded on that axis.  ``max_age_s`` drops chunks
    whose newest sample is older than ``sim.now - max_age_s``;
    ``max_bytes`` drops oldest chunks while the tenant's retained
    columnar footprint (:data:`SAMPLE_BYTES` per sample) exceeds the
    budget.
    """

    max_age_s: Optional[float] = None
    max_bytes: Optional[int] = None

    @property
    def bounded(self) -> bool:
        return self.max_age_s is not None or self.max_bytes is not None


@dataclass(frozen=True)
class RetentionConfig:
    """Per-tenant retention: entity-id prefix -> policy, plus a default.

    ``tenants`` is a tuple of ``(prefix, policy)`` pairs; the longest
    prefix matching an entity id governs its samples, the ``default``
    policy governs the rest.
    """

    default: RetentionPolicy = RetentionPolicy()
    tenants: Tuple[Tuple[str, RetentionPolicy], ...] = ()

    def policy_for(self, entity_id: str) -> Tuple[str, RetentionPolicy]:
        """``(policy key, policy)`` governing ``entity_id``; the key is
        the matched prefix (``"*"`` for the default) and doubles as the
        audit-counter bucket."""
        best_prefix, best = None, self.default
        for prefix, policy in self.tenants:
            if entity_id.startswith(prefix) and (
                best_prefix is None or len(prefix) > len(best_prefix)
            ):
                best_prefix, best = prefix, policy
        return (best_prefix if best_prefix is not None else "*", best)


# -- the chunk store + meta blob ---------------------------------------------


class ColumnarStore:
    """Sealed chunk files plus the compaction meta blob under one root.

    The meta blob is the commit point of the WAL→chunk handoff:
    ``wal_base_seq`` counts every record ever drained out of the WAL
    (including records later dropped by retention), ``next_segment`` is
    the first WAL segment not yet compacted, and ``pending_drops`` lists
    chunks whose retention drop was decided but whose files may still
    exist (crash window between meta write and unlink).
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.wal_base_seq = 0
        self.next_segment = 0
        self.dropped_chunks = 0
        self.dropped_records = 0
        self.dropped_bytes = 0
        #: policy key -> {"chunks", "records", "bytes"} dropped by retention.
        self.tenant_drops: Dict[str, Dict[str, int]] = {}
        self.pending_drops: List[int] = []
        self._headers: Dict[int, dict] = {}
        self._load_meta()
        self._load_headers()

    # -- meta ----------------------------------------------------------------

    @property
    def meta_path(self) -> str:
        return os.path.join(self.root, META_FILE)

    def _load_meta(self) -> None:
        if not os.path.exists(self.meta_path):
            return
        meta = json.loads(read_sealed(self.meta_path).decode("utf-8"))
        self.wal_base_seq = meta["wal_base_seq"]
        self.next_segment = meta["next_segment"]
        self.dropped_chunks = meta["dropped_chunks"]
        self.dropped_records = meta["dropped_records"]
        self.dropped_bytes = meta["dropped_bytes"]
        self.tenant_drops = meta["tenant_drops"]
        self.pending_drops = list(meta["pending_drops"])

    def write_meta(self) -> None:
        meta = {
            "version": 1,
            "wal_base_seq": self.wal_base_seq,
            "next_segment": self.next_segment,
            "dropped_chunks": self.dropped_chunks,
            "dropped_records": self.dropped_records,
            "dropped_bytes": self.dropped_bytes,
            "tenant_drops": self.tenant_drops,
            "pending_drops": sorted(self.pending_drops),
        }
        payload = json.dumps(meta, sort_keys=True, separators=(",", ":"))
        write_sealed(self.meta_path, payload.encode("utf-8"))

    def _load_headers(self) -> None:
        for index, path in chunks_in(self.root):
            self._headers[index] = chunk_header(read_sealed(path))

    # -- chunks --------------------------------------------------------------

    def chunk_indexes(self) -> List[int]:
        return sorted(self._headers)

    def header(self, index: int) -> dict:
        return self._headers[index]

    @property
    def chunk_records(self) -> int:
        return sum(h["records"] for h in self._headers.values())

    def append_chunk(self, index: int, payload: bytes) -> dict:
        """Seal ``payload`` as chunk ``index`` (atomic, fsynced)."""
        write_sealed(chunk_path(self.root, index), payload)
        header = chunk_header(payload)
        self._headers[index] = header
        return header

    def read_chunk(self, index: int) -> ChunkData:
        return decode_chunk(read_sealed(chunk_path(self.root, index)))

    def note_compacted(self, index: int, records: int) -> None:
        """Commit the handoff of segment ``index`` (meta write)."""
        self.wal_base_seq += records
        self.next_segment = index + 1
        self.write_meta()

    # -- retention drops -----------------------------------------------------

    def begin_drop(self, indexes: List[int],
                   accounting: Dict[str, Dict[str, int]]) -> None:
        """Record the retention decision durably *before* unlinking."""
        for index in indexes:
            header = self._headers.pop(index)
            self.dropped_chunks += 1
            self.dropped_records += header["records"]
            self.dropped_bytes += header["records"] * SAMPLE_BYTES
        for key, counts in accounting.items():
            bucket = self.tenant_drops.setdefault(
                key, {"chunks": 0, "records": 0, "bytes": 0})
            for name, value in counts.items():
                bucket[name] += value
        self.pending_drops = sorted(set(self.pending_drops) | set(indexes))
        self.write_meta()

    def finish_drop(self) -> None:
        """Unlink every pending-drop chunk file, then clear the list."""
        for index in self.pending_drops:
            path = chunk_path(self.root, index)
            if os.path.exists(path):
                os.unlink(path)
                fsync_dir(path)
            self._headers.pop(index, None)
        if self.pending_drops:
            self.pending_drops = []
            self.write_meta()

    def report(self) -> dict:
        return {
            "chunks": len(self._headers),
            "chunk_records": self.chunk_records,
            "wal_base_seq": self.wal_base_seq,
            "next_segment": self.next_segment,
            "dropped_chunks": self.dropped_chunks,
            "dropped_records": self.dropped_records,
            "dropped_bytes": self.dropped_bytes,
            "tenant_drops": {k: dict(v) for k, v in sorted(self.tenant_drops.items())},
        }


def reconcile(columnar: ColumnarStore, store: SegmentStore) -> bool:
    """Replay a possibly-interrupted handoff to a consistent state.

    Idempotent; safe to run on every open and after every simulated
    crash.  Returns True when anything had to change.  Handles, in
    order: chunks the meta marked dropped but whose files survived
    (unlink them); orphan chunks sealed before the meta advance (adopt
    them — the records are durable in the chunk, so the meta advance is
    replayed); WAL segments the meta already covers (drop them — their
    records live in a chunk or were legitimately compacted empty).
    """
    changed = False
    for index in list(columnar.pending_drops):
        path = chunk_path(columnar.root, index)
        if os.path.exists(path):
            os.unlink(path)
            fsync_dir(path)
        columnar._headers.pop(index, None)
    if columnar.pending_drops:
        columnar.pending_drops = []
        changed = True
    for index in sorted(i for i in columnar._headers if i >= columnar.next_segment):
        columnar.wal_base_seq += columnar._headers[index]["records"]
        columnar.next_segment = index + 1
        changed = True
    for index, path in segments_in(store.root):
        if index >= columnar.next_segment:
            continue
        with open(path, "rb") as fh:
            result = scan_records(fh.read())
        store.drop_segment(index, len(result.payloads))
        changed = True
    if changed:
        columnar.write_meta()
    return changed


# -- the sim-time compaction service -----------------------------------------


class CompactionService:
    """Background WAL→chunk compaction on the simulation clock.

    Owns the :class:`ColumnarStore` beside its :class:`SegmentStore`
    (same directory), a sim-time pump (:meth:`start`) draining sealed
    segments every ``interval_s``, retention enforcement, and the
    crash-point hooks the kill-matrix tests arm (:attr:`kill_after` set
    to ``"chunk_sealed"``, ``"meta_written"`` or ``"retention_meta"``
    raises :class:`CompactionKilled` at that boundary).
    """

    def __init__(
        self,
        sim,
        durability,
        interval_s: float = 3600.0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        retention: Optional[RetentionConfig] = None,
    ) -> None:
        if interval_s <= 0:
            raise StoreError(f"interval_s must be positive, got {interval_s}")
        self.sim = sim
        self.durability = durability
        self.store: SegmentStore = durability.store
        self.interval_s = interval_s
        self.block_size = block_size
        self.retention = retention
        self.columnar = ColumnarStore(self.store.root)
        self.reader = ColumnarReader(self.columnar, self.store)
        self.kill_after: Optional[str] = None
        self.compacted_segments = 0
        self.compacted_records = 0
        self.retention_blocked_chunks = 0
        self._pump = None
        # A prior process may have died mid-handoff in this directory.
        self.recover()
        metrics = sim.metrics
        self._m_compacted = metrics.counter("store.compacted_records")
        self._m_dropped = metrics.counter("store.retention_dropped_records")
        metrics.register_callback(
            "store.chunks", lambda: float(len(self.columnar._headers))
        )

    # -- the sim-time pump ---------------------------------------------------

    def start(self) -> None:
        """Spawn the compaction pump (idempotent)."""
        if self._pump is None:
            self._pump = self.sim.spawn(self._loop(), name="store-compact")

    def _loop(self):
        while True:
            yield self.interval_s
            self.compact_once()

    def _crash_point(self, name: str) -> None:
        if self.kill_after == name:
            self.kill_after = None
            raise CompactionKilled(
                f"simulated kill at compaction crash point {name!r}"
            )

    # -- compaction ----------------------------------------------------------

    def compact_once(self) -> int:
        """Drain every sealed segment into a chunk; returns records moved.

        Idempotent across interruptions: a segment the meta already
        covers is finished (deleted) without re-compacting, and
        re-sealing an orphan chunk rewrites identical bytes.
        """
        moved = 0
        for index, path in self.store.sealed_segments():
            with open(path, "rb") as fh:
                data = fh.read()
            result = scan_records(data)
            if result.torn:
                raise StoreError(
                    f"sealed segment {path!r} is torn; the rotation barrier "
                    "guarantees sealed segments are intact — refusing to compact"
                )
            records = len(result.payloads)
            if index < self.columnar.next_segment:
                # Crash landed between the meta advance and the segment
                # delete; the records are already in a chunk.
                self.store.drop_segment(index, records)
                continue
            samples = [decode_sample(p) for p in result.payloads]
            if records:
                payload = encode_chunk(
                    index, self.columnar.wal_base_seq, samples, self.block_size
                )
                self.columnar.append_chunk(index, payload)
            self._crash_point("chunk_sealed")
            self.columnar.note_compacted(index, records)
            self._crash_point("meta_written")
            self.store.drop_segment(index, records)
            self.compacted_segments += 1
            self.compacted_records += records
            self._m_compacted.inc(records)
            moved += records
        if self.retention is not None:
            self.enforce_retention()
        return moved

    # -- retention -----------------------------------------------------------

    def enforce_retention(self) -> int:
        """Apply the retention config; returns chunks dropped.

        Deterministic: driven by the sim clock and the chunk zone maps
        only.  Walks chunks oldest-first; a chunk drops when every
        owning tenant's policy allows it, freeing that tenant's byte
        budget as it goes.  Mixed-ownership chunks where only *some*
        owners want the drop are kept and counted.
        """
        if self.retention is None:
            return 0
        now = self.sim.now
        # index -> policy key -> [policy, records, bytes, newest sample t]
        groups: Dict[int, Dict[str, list]] = {}
        usage: Dict[str, int] = {}
        for index in self.columnar.chunk_indexes():
            per: Dict[str, list] = {}
            for entry in self.columnar.header(index)["series"]:
                key, policy = self.retention.policy_for(entry["entity"])
                size = entry["count"] * SAMPLE_BYTES
                newest = max(block[2] for block in entry["blocks"])
                group = per.get(key)
                if group is None:
                    per[key] = [policy, entry["count"], size, newest]
                else:
                    group[1] += entry["count"]
                    group[2] += size
                    group[3] = max(group[3], newest)
            groups[index] = per
            for key, group in per.items():
                usage[key] = usage.get(key, 0) + group[2]
        to_drop: List[int] = []
        accounting: Dict[str, Dict[str, int]] = {}
        for index in self.columnar.chunk_indexes():
            per = groups[index]
            verdicts = []
            for key, (policy, _records, size, newest) in per.items():
                age_drop = (policy.max_age_s is not None
                            and newest < now - policy.max_age_s)
                byte_drop = (policy.max_bytes is not None
                             and usage[key] > policy.max_bytes)
                verdicts.append(age_drop or byte_drop)
            if per and all(verdicts):
                to_drop.append(index)
                for key, (policy, records, size, _newest) in per.items():
                    usage[key] -= size
                    bucket = accounting.setdefault(
                        key, {"chunks": 0, "records": 0, "bytes": 0})
                    bucket["chunks"] += 1
                    bucket["records"] += records
                    bucket["bytes"] += size
            elif any(verdicts):
                self.retention_blocked_chunks += 1
        if not to_drop:
            return 0
        dropped_records = sum(
            self.columnar.header(i)["records"] for i in to_drop)
        self.columnar.begin_drop(to_drop, accounting)
        self._crash_point("retention_meta")
        self.columnar.finish_drop()
        self._m_dropped.inc(dropped_records)
        return len(to_drop)

    # -- recovery + audit ----------------------------------------------------

    def recover(self) -> bool:
        """Reconcile the WAL↔chunk handoff after a (simulated) crash."""
        return reconcile(self.columnar, self.store)

    def audit(self) -> dict:
        """Boundary invariants for the chaos audit.

        ``boundary_consistent``: every record ever drained from the WAL
        is either in a retained chunk or accounted as a retention drop.
        ``overlap_chunks`` / ``overlap_segments``: records reachable
        from both sides of the handoff (must be 0 after reconcile —
        otherwise a read could serve a sample twice).
        """
        col = self.columnar
        retained = col.chunk_records
        overlap_chunks = sum(
            1 for i in col.chunk_indexes() if i >= col.next_segment)
        overlap_segments = sum(
            1 for i, _p in segments_in(self.store.root)
            if i < col.next_segment)
        return {
            "boundary_consistent":
                retained + col.dropped_records == col.wal_base_seq,
            "overlap_chunks": overlap_chunks,
            "overlap_segments": overlap_segments,
            "retained_records": retained,
            "dropped_records": col.dropped_records,
            "wal_base_seq": col.wal_base_seq,
        }

    def report(self) -> dict:
        data = self.columnar.report()
        data.update({
            "compacted_segments": self.compacted_segments,
            "compacted_records": self.compacted_records,
            "retention_blocked_chunks": self.retention_blocked_chunks,
        })
        return data


# -- the streaming read path -------------------------------------------------


class ColumnarReader:
    """Answers :class:`HistoryQuery` reads from chunks + the WAL tail.

    Chunks hold the old, compacted majority of every series; the WAL's
    resident records are the fresh tail.  Reads stream chunk-by-chunk in
    append order — memory stays bounded by the answer plus one decoded
    chunk — and the zone maps prune whole blocks (and whole chunks, via
    the cached headers, without touching the file) that cannot
    intersect the query window.  Zone maps are never used to *answer*
    anything: every surviving sample is re-folded left-to-right in
    append order, which is what keeps results bit-identical to the
    in-memory path.
    """

    def __init__(self, columnar: ColumnarStore, store: SegmentStore) -> None:
        self.columnar = columnar
        self.store = store

    # -- sources -------------------------------------------------------------

    def _wal_samples(self, entity_id: str, attr: str) -> List[Tuple[float, float]]:
        rows: List[Tuple[float, float]] = []
        for payload in self.store.read_all():
            eid, a, t, v = decode_sample(payload)
            if eid == entity_id and a == attr:
                rows.append((t, v))
        return rows

    def _series_entry(self, index: int, entity_id: str, attr: str):
        for entry in self.columnar.header(index)["series"]:
            if entry["entity"] == entity_id and entry["attr"] == attr:
                return entry
        return None

    def _column_samples(self, entity_id: str, attr: str,
                        lo: float, hi: float):
        """Chunk samples whose zone-map block intersects ``[lo, hi]``.

        Returns ``(rows, scanned_blocks, pruned_blocks, scanned_samples)``;
        rows are in append order and may include edge samples just
        outside the window (block granularity) — callers filter
        per-sample.
        """
        rows: List[Tuple[float, float]] = []
        scanned_blocks = pruned_blocks = scanned_samples = 0
        for index in self.columnar.chunk_indexes():
            entry = self._series_entry(index, entity_id, attr)
            if entry is None:
                continue
            blocks = entry["blocks"]
            if (max(b[2] for b in blocks) < lo
                    or min(b[1] for b in blocks) > hi):
                pruned_blocks += len(blocks)
                continue
            times, values = self.columnar.read_chunk(index).series[
                (entity_id, attr)]
            pos = 0
            for block in blocks:
                count = int(block[0])
                if block[2] < lo or block[1] > hi:
                    pruned_blocks += 1
                else:
                    scanned_blocks += 1
                    scanned_samples += count
                    rows.extend(zip(times[pos:pos + count],
                                    values[pos:pos + count]))
                pos += count
        return rows, scanned_blocks, pruned_blocks, scanned_samples

    # -- the read API --------------------------------------------------------

    def read(self, query: HistoryQuery) -> HistoryResult:
        query.validate()
        kind = query.kind
        if kind == "lastn":
            return self._read_lastn(query)
        if kind == "rollup":
            return self._read_rollup(query)
        if kind == "aggregate":
            return self._read_aggregate(query)
        return self._read_range(query)

    def _read_range(self, query: HistoryQuery) -> HistoryResult:
        rows, sb, pb, ss = self._column_samples(
            query.entity_id, query.attr, query.since, query.until)
        wal = self._wal_samples(query.entity_id, query.attr)
        ss += len(wal)
        filtered = [s for s in chain(rows, wal)
                    if query.since <= s[0] <= query.until]
        return HistoryResult(query, "raw", "columnar", rows=filtered,
                             scanned_samples=ss, scanned_blocks=sb,
                             pruned_blocks=pb)

    def _read_lastn(self, query: HistoryQuery) -> HistoryResult:
        n = query.last_n
        wal = self._wal_samples(query.entity_id, query.attr)
        scanned = len(wal)
        scanned_blocks = pruned_blocks = 0
        older: List[Tuple[float, float]] = []
        touched = set()
        if len(wal) < n:
            # Walk chunks newest-first until enough samples are in hand;
            # everything older is pruned without being read.
            for index in reversed(self.columnar.chunk_indexes()):
                entry = self._series_entry(index, query.entity_id, query.attr)
                if entry is None:
                    continue
                times, values = self.columnar.read_chunk(index).series[
                    (query.entity_id, query.attr)]
                older = list(zip(times, values)) + older
                touched.add(index)
                scanned += entry["count"]
                scanned_blocks += len(entry["blocks"])
                if len(older) + len(wal) >= n:
                    break
        # Every chunk the walk never opened — including all of them when
        # the WAL tail alone satisfied the query — counts as pruned.
        for index in self.columnar.chunk_indexes():
            if index in touched:
                continue
            entry = self._series_entry(index, query.entity_id, query.attr)
            if entry is not None:
                pruned_blocks += len(entry["blocks"])
        rows = (older + wal)[-n:]
        return HistoryResult(query, "lastn", "columnar", rows=rows,
                             scanned_samples=scanned,
                             scanned_blocks=scanned_blocks,
                             pruned_blocks=pruned_blocks)

    def _read_rollup(self, query: HistoryQuery) -> HistoryResult:
        period = query.period_s
        # A bucket is listed when its *start* is in [since, until]; a
        # sample lands in the bucket its own timestamp selects, so the
        # prunable time range widens to whole buckets.
        lo = (float("-inf") if query.since == float("-inf")
              else math.ceil(query.since / period) * period)
        hi = (float("inf") if query.until == float("inf")
              else (math.floor(query.until / period) + 1) * period)
        rows, sb, pb, ss = self._column_samples(
            query.entity_id, query.attr, lo, hi)
        wal = self._wal_samples(query.entity_id, query.attr)
        ss += len(wal)
        buckets: Dict[int, List[float]] = {}
        for t, v in chain(rows, wal):
            index = int(t // period)
            start = index * period
            if start < query.since or start > query.until:
                continue
            bucket = buckets.get(index)
            if bucket is None:
                buckets[index] = [1.0, v, v, v]
                continue
            bucket[0] += 1.0
            if v < bucket[1]:
                bucket[1] = v
            if v > bucket[2]:
                bucket[2] = v
            bucket[3] += v
        method = query.effective_method
        out: List[Tuple[float, float]] = []
        for index in sorted(buckets):
            count, vmin, vmax, vsum = buckets[index]
            if method == "count":
                value = count
            elif method == "min":
                value = vmin
            elif method == "max":
                value = vmax
            elif method == "sum":
                value = vsum
            else:
                value = vsum / count
            out.append((index * period, value))
        return HistoryResult(query, "rollup", "columnar", rows=out,
                             scanned_samples=ss, scanned_blocks=sb,
                             pruned_blocks=pb)

    def _read_aggregate(self, query: HistoryQuery) -> HistoryResult:
        rows, sb, pb, ss = self._column_samples(
            query.entity_id, query.attr, query.since, query.until)
        wal = self._wal_samples(query.entity_id, query.attr)
        ss += len(wal)
        count = 0
        vmin = vmax = vsum = 0.0
        for t, v in chain(rows, wal):
            if not (query.since <= t <= query.until):
                continue
            if count == 0:
                vmin = vmax = v
                vsum = 0.0
            else:
                if v < vmin:
                    vmin = v
                if v > vmax:
                    vmax = v
            vsum += v
            count += 1
        stats = None
        if count:
            stats = {
                "count": float(count),
                "min": vmin,
                "max": vmax,
                "sum": vsum,
                "mean": vsum / count,
            }
        return HistoryResult(query, "aggregate", "columnar", stats=stats,
                             scanned_samples=ss, scanned_blocks=sb,
                             pruned_blocks=pb)


def open_columnar_reader(root: str) -> ColumnarReader:
    """Open a store directory for streaming reads (the serve/CLI path).

    Reconciles any interrupted handoff first, so reads never observe a
    record on both sides of the WAL↔chunk boundary.
    """
    store = SegmentStore(root)
    columnar = ColumnarStore(root)
    reconcile(columnar, store)
    return ColumnarReader(columnar, store)
