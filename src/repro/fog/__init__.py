"""Fog computing tier.

The paper requires that "the availability of the platform must be provided
even in case of Internet disconnections using local components (fog
computing) to keep the platform running properly".  This package implements
that architecture:

* :class:`~repro.fog.node.FogNode` — a farm-side host running its own MQTT
  broker, context broker and IoT agent, so the sense→decide→actuate loop
  closes locally;
* :class:`~repro.fog.node.CloudNode` — the cloud tier: context broker,
  history store, analytics;
* :class:`~repro.fog.replication.Replicator` — store-and-forward
  replication of context updates fog→cloud with sequence numbers, acks,
  retransmission and a bounded backlog, so a healed partition converges
  and data loss is measurable (experiment E9).
"""

from repro.fog.node import CloudNode, FogNode
from repro.fog.replication import Replicator, SyncBatch

__all__ = ["CloudNode", "FogNode", "Replicator", "SyncBatch"]
