"""Store-and-forward context replication, fog → cloud.

Every update applied to the fog context broker is appended to a bounded
outbound log.  A sync process ships batches over the WAN with sequence
numbers; the cloud endpoint applies them idempotently (per-source
monotone sequence check) and acks.  Unacked batches are retransmitted, so
an Internet partition simply grows the backlog and the healed link drains
it.  When the backlog overflows, the *oldest* updates are dropped and
counted — that count is experiment E9's "data loss after resync" metric.
"""

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.context.broker import ContextBroker
from repro.context.entities import ContextEntity
from repro.network.node import NetworkNode
from repro.network.packet import Packet
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator


class SyncBatch:
    """A numbered batch of entity updates in flight to the cloud."""

    __slots__ = ("seq", "updates", "source")

    def __init__(self, seq: int, updates: List[dict], source: str) -> None:
        self.seq = seq
        self.updates = updates
        self.source = source

    def wire_size(self) -> int:
        # Rough NGSI-batch JSON size: per update ~40 bytes of framing plus
        # the attribute payload.
        size = 64
        for update in self.updates:
            size += 40 + sum(len(str(k)) + len(str(v)) for k, v in update["attrs"].items())
        return size


class _SyncAck:
    __slots__ = ("seq", "source")

    def __init__(self, seq: int, source: str) -> None:
        self.seq = seq
        self.source = source


class _ReplicatorEndpoint(NetworkNode):
    """Network endpoint delegating inbound packets to its owner."""

    def __init__(self, address: str, owner) -> None:
        super().__init__(address)
        self._owner = owner

    def on_packet(self, packet: Packet) -> None:
        self._owner._on_packet(packet)


class CloudSyncTarget:
    """Cloud-side endpoint: applies batches idempotently and acks."""

    def __init__(
        self, sim: Simulator, network: Network, address: str, context: ContextBroker
    ) -> None:
        self.sim = sim
        self.context = context
        self.node = _ReplicatorEndpoint(address, self)
        network.add_node(self.node)
        # Highest sequence applied per source replicator.
        self._applied_seq: Dict[str, int] = {}
        self.batches_applied = 0
        self.batches_duplicate = 0

    @property
    def address(self) -> str:
        return self.node.address

    def _on_packet(self, packet: Packet) -> None:
        batch = packet.payload
        if not isinstance(batch, SyncBatch):
            return
        last = self._applied_seq.get(batch.source, 0)
        if batch.seq == last + 1:
            for update in batch.updates:
                self.context.ensure_entity(update["entity_id"], update["entity_type"])
                self.context.update_attributes(update["entity_id"], update["attrs"])
            self._applied_seq[batch.source] = batch.seq
            self.batches_applied += 1
        elif batch.seq <= last:
            self.batches_duplicate += 1
        else:
            # Gap: an earlier batch was lost to overflow on the fog side.
            # Accept and advance — the overflow already counted the loss.
            for update in batch.updates:
                self.context.ensure_entity(update["entity_id"], update["entity_type"])
                self.context.update_attributes(update["entity_id"], update["attrs"])
            self._applied_seq[batch.source] = batch.seq
            self.batches_applied += 1
        self.node.send(packet.src, _SyncAck(batch.seq, batch.source), 32, flow="ngsi-sync")


class Replicator:
    """Fog-side replication daemon."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        source_context: ContextBroker,
        target_address: str,
        sync_interval_s: float = 30.0,
        batch_size: int = 50,
        max_backlog: int = 10_000,
        retry_timeout_s: float = 15.0,
    ) -> None:
        self.sim = sim
        self.source_context = source_context
        self.target_address = target_address
        self.sync_interval_s = sync_interval_s
        self.batch_size = batch_size
        self.max_backlog = max_backlog
        self.retry_timeout_s = retry_timeout_s
        self.node = _ReplicatorEndpoint(address, self)
        network.add_node(self.node)
        self._backlog: Deque[dict] = deque()
        self._next_seq = 1
        self._in_flight: Optional[SyncBatch] = None
        self._in_flight_since = 0.0
        # Optional half-open circuit breaker on the uplink (installed by
        # the resilience stage; duck-typed — see repro.resilience.breaker).
        # When OPEN, the pump stops transmitting: the backlog keeps
        # absorbing captures under its own overflow policy instead of the
        # retry loop hammering a dead WAN.
        self.breaker = None
        self.updates_captured = 0
        self.updates_synced = 0
        self.updates_dropped_overflow = 0
        self.batches_sent = 0
        self.batches_acked = 0
        labels = {"replicator": address}
        registry = sim.metrics
        self._m_captured = registry.counter("fog.updates_captured", labels)
        self._m_synced = registry.counter("fog.updates_synced", labels)
        self._m_dropped = registry.counter("fog.updates_dropped_overflow", labels)
        self._m_batches_sent = registry.counter("fog.sync_batches_sent", labels)
        self._m_batches_acked = registry.counter("fog.sync_batches_acked", labels)
        # Sim-time seconds from capture on the fog tier to cloud ack; a WAN
        # partition shows up as the tail of this distribution.
        self._m_lag = registry.histogram(
            "fog.sync_lag_s", labels,
            buckets=(1.0, 10.0, 30.0, 60.0, 120.0, 300.0, 900.0, 3600.0),
        )
        registry.register_callback(
            "fog.backlog_depth", lambda: float(self.backlog_depth), labels
        )
        source_context.update_hooks.append(self._capture)
        # The sync loop is registered as a factory so checkpoint rebuilds
        # (and crash/restart) respawn it through one path.
        sim.register_process_factory(f"replicator:{address}", self._sync_loop)
        self._process = sim.spawn_registered(f"replicator:{address}")

    @property
    def backlog_depth(self) -> int:
        return len(self._backlog) + (len(self._in_flight.updates) if self._in_flight else 0)

    # -- capture -----------------------------------------------------------

    def _capture(self, entity: ContextEntity, changed: List[str]) -> None:
        update = {
            "entity_id": entity.entity_id,
            "entity_type": entity.entity_type,
            "attrs": {name: entity.get(name) for name in changed},
            "captured_at": self.sim.clock.now,
        }
        if self.sim.tracer.enabled:
            # Capture runs inside the context broker's update hooks, so the
            # active span is the originating context.update; the key is
            # added only when tracing is on to keep untraced update dicts
            # bit-identical.
            update["trace_ctx"] = self.sim.tracer.current()
        self.updates_captured += 1
        self._m_captured.inc()
        if len(self._backlog) >= self.max_backlog:
            self._backlog.popleft()
            self.updates_dropped_overflow += 1
            self._m_dropped.inc()
        self._backlog.append(update)

    # -- sync loop -----------------------------------------------------------

    def _sync_loop(self):
        while True:
            yield self.sync_interval_s
            self._pump()

    def _pump(self) -> None:
        now = self.sim.clock.now
        if self._in_flight is not None:
            # "<=" not "<": an ACK processed at *exactly* retry_timeout_s
            # (the ack handler runs in the same sim instant as a pump
            # tick) must win over the retransmission, or the batch is
            # double-sent and counted twice.
            if now - self._in_flight_since <= self.retry_timeout_s:
                return
            if self.breaker is not None:
                self.breaker.record_failure(now)
                if not self.breaker.allow(now):
                    return
            self._transmit(self._in_flight)  # retransmit
            return
        if not self._backlog:
            return
        if self.breaker is not None and not self.breaker.allow(now):
            return
        updates = [self._backlog.popleft() for _ in range(min(self.batch_size, len(self._backlog)))]
        batch = SyncBatch(self._next_seq, updates, self.node.address)
        self._next_seq += 1
        self._in_flight = batch
        self._transmit(batch)

    def _transmit(self, batch: SyncBatch) -> None:
        self._in_flight_since = self.sim.clock.now
        self.batches_sent += 1
        self._m_batches_sent.inc()
        self.node.send(self.target_address, batch, batch.wire_size(), flow="ngsi-sync")

    def _on_packet(self, packet: Packet) -> None:
        ack = packet.payload
        if not isinstance(ack, _SyncAck):
            return
        if self._in_flight is not None and ack.seq == self._in_flight.seq:
            self.updates_synced += len(self._in_flight.updates)
            self._m_synced.inc(len(self._in_flight.updates))
            self.batches_acked += 1
            self._m_batches_acked.inc()
            if self.sim.metrics.enabled:
                now = self.sim.clock.now
                for update in self._in_flight.updates:
                    self._m_lag.observe(now - update.get("captured_at", now))
            if self.sim.tracer.enabled:
                now = self.sim.clock.now
                for update in self._in_flight.updates:
                    ctx = update.get("trace_ctx")
                    if ctx is not None:
                        self.sim.tracer.record_span(
                            "fog.synced",
                            "fog",
                            parent=ctx,
                            entity=update["entity_id"],
                            lag_s=now - update.get("captured_at", now),
                        )
            self._in_flight = None
            if self.breaker is not None:
                self.breaker.record_success(self.sim.clock.now)
            # Keep draining immediately while there's backlog (fast resync
            # after a healed partition instead of one batch per interval).
            self._pump()

    def flush_now(self) -> None:
        """Kick the pump outside the periodic schedule (tests, shutdown)."""
        self._pump()

    # -- fault injection -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._process.alive

    def crash(self) -> None:
        """Kill the sync loop, keeping durable state.

        The backlog, sequence counter and in-flight batch survive — they
        model the on-disk store-and-forward log, which is the whole point
        of the fog tier's disconnection tolerance (E9).  Only the daemon
        process dies; captures keep accumulating via the context hook.
        """
        if self._process.alive:
            self._process.kill("fault:crash")
        self.sim.trace.emit(
            self.sim.now, "fog", "replicator crashed",
            replicator=self.node.address, backlog=self.backlog_depth,
        )

    def restart(self) -> None:
        """Re-arm the sync loop after :meth:`crash`.

        The retained in-flight batch (if any) retransmits through the
        normal ``retry_timeout_s`` path, and the backlog drains batch by
        batch exactly as after a healed partition.
        """
        if self._process.alive:
            return
        self._process = self.sim.spawn_registered(
            f"replicator:{self.node.address}"
        )
        self.sim.trace.emit(
            self.sim.now, "fog", "replicator restarted",
            replicator=self.node.address, backlog=self.backlog_depth,
        )
