"""Fog and cloud hosts.

Both are *compositions* of the substrate services; the deployment
configurations in :mod:`repro.core.deployment` choose which tier hosts
which service, mirroring the paper's "range of deployment configurations
involving smart algorithms in the cloud [or] fog-based smart decisions on
the farm premises".
"""

from typing import Optional

from repro.agents.iot_agent import IoTAgent
from repro.context.broker import ContextBroker
from repro.context.history import ShortTermHistory
from repro.mqtt.broker import MqttBroker
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator


class FogNode:
    """Farm-premises host: local MQTT broker + context broker + IoT agent."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        farm: str,
        authenticator=None,
        authorizer=None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.farm = farm
        self.mqtt_address = f"{name}:mqtt"
        self.mqtt = MqttBroker(
            sim, self.mqtt_address, authenticator=authenticator, authorizer=authorizer
        )
        network.add_node(self.mqtt)
        self.context = ContextBroker(sim, name=f"{name}:context")
        self.history = ShortTermHistory(self.context)
        self.agent = IoTAgent(
            sim, network, f"{name}:iota", self.mqtt_address, self.context, farm
        )

    def start(self) -> None:
        self.agent.start()


class CloudNode:
    """Cloud tier: context broker + history (+ optionally its own MQTT)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str = "cloud",
        with_mqtt: bool = False,
        authenticator=None,
        authorizer=None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.context = ContextBroker(sim, name=f"{name}:context")
        self.history = ShortTermHistory(self.context)
        self.mqtt: Optional[MqttBroker] = None
        self.mqtt_address = f"{name}:mqtt"
        if with_mqtt:
            self.mqtt = MqttBroker(
                sim, self.mqtt_address, authenticator=authenticator, authorizer=authorizer
            )
            network.add_node(self.mqtt)
