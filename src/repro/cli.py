"""Command-line interface: run pilots and inspect reports without code.

Usage::

    python -m repro.cli list
    python -m repro.cli run matopiba --seed 3 --days 30
    python -m repro.cli run guaspari --security auth,encryption
    python -m repro.cli compare matopiba --seed 3        # smart vs fixed

``run`` executes a pilot (optionally truncated to ``--days``) and prints
the season report; ``compare`` runs the smart scheduler against the
fixed-calendar baseline on the same field and weather and prints the
business case (water, energy, money).
"""

import argparse
import sys
from typing import List, Optional

from repro.analytics.economics import Tariffs, deployment_benefit_eur, price_season
from repro.core.pilot import PilotReport
from repro.core.pilots import (
    build_cbec_pilot,
    build_guaspari_pilot,
    build_intercrop_pilot,
    build_matopiba_pilot,
)
from repro.core.security_profile import SecurityConfig
from repro.faults.plan import FaultPlan, FaultPlanError
from repro.resilience import ResilienceConfig

PILOTS = {
    "cbec": lambda seed, security, faults, resilience=None: build_cbec_pilot(
        seed=seed, security=security, fault_plan=faults, resilience=resilience)[0],
    "intercrop": lambda seed, security, faults, resilience=None: build_intercrop_pilot(
        seed=seed, security=security, fault_plan=faults, resilience=resilience)[0],
    "guaspari": lambda seed, security, faults, resilience=None: build_guaspari_pilot(
        seed=seed, security=security, fault_plan=faults, resilience=resilience),
    "matopiba": lambda seed, security, faults, resilience=None: build_matopiba_pilot(
        seed=seed, security=security, fault_plan=faults, resilience=resilience),
}

SECURITY_FLAGS = ("auth", "encryption", "detection", "ledger", "command_rhythm")


def _parse_security(spec: Optional[str]) -> SecurityConfig:
    config = SecurityConfig()
    if not spec:
        return config
    for flag in spec.split(","):
        flag = flag.strip()
        if not flag:
            continue
        if flag not in SECURITY_FLAGS:
            raise SystemExit(
                f"unknown security flag {flag!r}; choose from {', '.join(SECURITY_FLAGS)}"
            )
        setattr(config, flag, True)
    return config


def _print_report(report: PilotReport, out) -> None:
    rows = [
        ("season days", report.season_days),
        ("irrigation", f"{report.irrigation_m3:.1f} m3 ({report.irrigation_mm_per_ha:.1f} mm/ha)"),
        ("rain", f"{report.rain_mm:.1f} mm"),
        ("energy", f"{report.total_energy_kwh:.1f} kWh"),
        ("relative yield", f"{report.relative_yield:.3f}"),
        ("yield", f"{report.yield_t:.1f} t"),
        ("telemetry processed", report.measures_processed),
        ("decisions / commands", f"{report.decisions} / {report.commands_sent}"),
        ("skipped (no-data/stale)", f"{report.skipped_no_data} / {report.skipped_stale}"),
        ("devices dead", report.devices_dead),
        ("alerts / quarantined", f"{report.alerts} / {report.quarantined_devices}"),
    ]
    width = max(len(label) for label, _ in rows)
    print(f"--- {report.name} ---", file=out)
    for label, value in rows:
        print(f"{label.ljust(width)} : {value}", file=out)


def cmd_list(args, out) -> int:
    print("available pilots:", file=out)
    descriptions = {
        "cbec": "Emilia-Romagna tomato, canal distribution, cloud deployment",
        "intercrop": "Cartagena lettuce, desalination source mix, cloud deployment",
        "guaspari": "Pinhal wine grape, regulated deficit, fog deployment",
        "matopiba": "Barreiras soybean, VRI center pivot, mobile-fog deployment",
    }
    for name in sorted(PILOTS):
        print(f"  {name.ljust(10)} {descriptions[name]}", file=out)
    return 0


def _print_metrics_summary(runner, out) -> None:
    metrics = runner.sim.metrics
    if not metrics.enabled:
        return
    print(
        "metrics: "
        f"{runner.sim.events_per_sec():,.0f} events/s kernel, "
        f"{metrics.total('mqtt.publishes_in'):.0f} messages published, "
        f"{metrics.total('context.notifications'):.0f} notifications delivered",
        file=out,
    )
    if runner.supervisor is not None:
        states = runner.supervisor.states()
        healthy = sum(1 for s in states.values() if s == "healthy")
        report = runner.report()
        print(
            "resilience: "
            f"{healthy}/{len(states)} services healthy, "
            f"{report.resilience_restarts} restarts, "
            f"{report.breaker_opens} breaker opens, "
            f"{report.degraded_episodes} degraded episodes, "
            f"{report.reconciled_decisions} decisions reconciled",
            file=out,
        )


def _load_fault_plan(path: Optional[str]) -> Optional[FaultPlan]:
    if not path:
        return None
    try:
        return FaultPlan.load(path)
    except OSError as exc:
        raise SystemExit(f"cannot read fault plan {path!r}: {exc}")
    except FaultPlanError as exc:
        raise SystemExit(f"invalid fault plan {path!r}: {exc}")


def cmd_run(args, out) -> int:
    security = _parse_security(args.security)
    fault_plan = _load_fault_plan(args.faults)
    resilience = ResilienceConfig() if args.resilience else None
    runner = PILOTS[args.pilot](args.seed, security, fault_plan, resilience)
    if args.days is not None:
        runner.run_days(args.days)
        report = runner.report()
    else:
        report = runner.run_season()
    _print_report(report, out)
    _print_metrics_summary(runner, out)
    if runner.fault_injector is not None:
        injector = runner.fault_injector
        print(
            f"faults: plan {fault_plan.name!r}, "
            f"{injector.injected} injected, {injector.recovered} recovered, "
            f"{injector.active_count} still active",
            file=out,
        )
    if args.metrics:
        try:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                fh.write(runner.sim.metrics.to_json())
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write metrics snapshot to {args.metrics!r}: {exc}")
        print(f"metrics snapshot written to {args.metrics}", file=out)
    return 0


def cmd_compare(args, out) -> int:
    if args.pilot != "matopiba":
        raise SystemExit("compare currently supports the matopiba pilot")
    smart = build_matopiba_pilot(
        seed=args.seed, rows=4, cols=4, probe_interval_s=3600.0, scheduler_kind="smart"
    ).run_season()
    fixed = build_matopiba_pilot(
        seed=args.seed, rows=4, cols=4, probe_interval_s=3600.0, scheduler_kind="fixed"
    ).run_season()
    for report in (fixed, smart):
        _print_report(report, out)
        print(file=out)
    tariffs = Tariffs()
    smart_economics = price_season(smart, tariffs)
    fixed_economics = price_season(fixed, tariffs)
    benefit = deployment_benefit_eur(smart_economics, fixed_economics)
    water_saving = 1.0 - smart.irrigation_m3 / fixed.irrigation_m3
    print("--- business case: smart vs fixed calendar ---", file=out)
    print(f"water saved            : {water_saving:.1%}", file=out)
    print(f"input cost fixed       : EUR {fixed_economics.input_cost_eur:,.0f}", file=out)
    print(f"input cost smart       : EUR {smart_economics.input_cost_eur:,.0f}", file=out)
    print(f"season benefit (margin): EUR {benefit:,.0f}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="SWAMP platform pilot runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available pilots")

    run_parser = sub.add_parser("run", help="run one pilot season")
    run_parser.add_argument("pilot", choices=sorted(PILOTS))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--days", type=float, default=None,
                            help="truncate the season to N days")
    run_parser.add_argument("--security", default="",
                            help=f"comma list of {','.join(SECURITY_FLAGS)}")
    run_parser.add_argument("--metrics", default=None, metavar="PATH",
                            help="write a JSON metrics snapshot to PATH")
    run_parser.add_argument("--faults", default=None, metavar="PATH",
                            help="run under the fault plan in this JSON file")
    run_parser.add_argument("--resilience", action="store_true",
                            help="enable the supervision/backpressure/degraded-mode layer")

    compare_parser = sub.add_parser("compare", help="smart vs fixed-calendar business case")
    compare_parser.add_argument("pilot", choices=["matopiba"])
    compare_parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(args, out)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "compare":
        return cmd_compare(args, out)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
