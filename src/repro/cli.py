"""Command-line interface: run pilots and inspect reports without code.

Usage::

    python -m repro.cli list
    python -m repro.cli run matopiba --seed 3 --days 30
    python -m repro.cli run guaspari --security auth,encryption
    python -m repro.cli run matopiba --days 5 --trace trace.json --profile-top 10
    python -m repro.cli run matopiba --checkpoint run.ck --checkpoint-every 432000
    python -m repro.cli run --restore run.ck             # resume a checkpoint
    python -m repro.cli compare guaspari --seed 3        # smart vs fixed
    python -m repro.cli fleet --farms matopiba:2,guaspari --workers 2
    python -m repro.cli serve matopiba --days 1 --record trace.json \
        --responses responses.jsonl                      # service-layer replay

``run`` executes a pilot (optionally truncated to ``--days``) and prints
the season report; ``compare`` runs the smart scheduler against the
fixed-calendar baseline on the same field and weather and prints the
business case (water, energy, money).

Both subcommands share one options block built from
:class:`repro.core.run.RunOptions` — every knob the programmatic
entrypoint accepts has exactly one flag here, and both paths execute
through :func:`repro.core.run.run`.
"""

import argparse
import json
import sys
from typing import List, Optional

from repro.analytics.economics import Tariffs, deployment_benefit_eur, price_season
from repro.core.pilot import PilotReport
from repro.core.pilots import PILOT_BUILDERS
from repro.core.checkpoint import CheckpointError
from repro.core.run import RunOptions, run
from repro.core.security_profile import SecurityConfig
from repro.faults.plan import FaultPlan, FaultPlanError
from repro.resilience import ResilienceConfig

SECURITY_FLAGS = ("auth", "encryption", "detection", "ledger", "command_rhythm")

# Pilot-specific factory kwargs applied by ``compare``: the full-size
# MATOPIBA grid at the default probe cadence is too slow for a paired
# A/B run, so it keeps the coarse benchmark preset.
COMPARE_PRESETS = {
    "matopiba": {"rows": 4, "cols": 4, "probe_interval_s": 3600.0},
}


def _parse_security(spec: Optional[str]) -> SecurityConfig:
    # Delegates to the API-level parser; the CLI's contract is the
    # SystemExit (same message) rather than ValueError.
    from repro.core.run import parse_security_spec

    try:
        return parse_security_spec(spec)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _load_fault_plan(path: Optional[str]) -> Optional[FaultPlan]:
    if not path:
        return None
    try:
        return FaultPlan.load(path)
    except OSError as exc:
        raise SystemExit(f"cannot read fault plan {path!r}: {exc}")
    except FaultPlanError as exc:
        raise SystemExit(f"invalid fault plan {path!r}: {exc}")


def _options_from_args(
    args, scheduler_kind: Optional[str] = None, pilot_kwargs: Optional[dict] = None
) -> RunOptions:
    """Map the shared CLI options block onto one :class:`RunOptions`."""
    return RunOptions(
        pilot=args.pilot,
        seed=args.seed,
        days=args.days,
        security=_parse_security(args.security),
        faults=_load_fault_plan(args.faults),
        resilience=ResilienceConfig() if args.resilience else None,
        trace=args.trace is not None,
        profile=args.profile_top is not None,
        profile_top=args.profile_top if args.profile_top is not None else 10,
        scheduler_kind=scheduler_kind,
        pilot_kwargs=dict(pilot_kwargs or {}),
        checkpoint=getattr(args, "checkpoint", None),
        checkpoint_every_s=getattr(args, "checkpoint_every", None),
        restore=getattr(args, "restore", None),
        store_dir=getattr(args, "store", None),
        store_flush_s=getattr(args, "store_flush", None) or 60.0,
        store_segment_bytes=(getattr(args, "store_segment_bytes", None)
                             or 4 * 1024 * 1024),
        store_compact_s=getattr(args, "store_compact", None),
        store_retention_age_s=getattr(args, "store_retention_age", None),
        store_retention_bytes=getattr(args, "store_retention_bytes", None),
    )


def _print_report(report: PilotReport, out) -> None:
    rows = [
        ("season days", report.season_days),
        ("irrigation", f"{report.irrigation_m3:.1f} m3 ({report.irrigation_mm_per_ha:.1f} mm/ha)"),
        ("rain", f"{report.rain_mm:.1f} mm"),
        ("energy", f"{report.total_energy_kwh:.1f} kWh"),
        ("relative yield", f"{report.relative_yield:.3f}"),
        ("yield", f"{report.yield_t:.1f} t"),
        ("telemetry processed", report.measures_processed),
        ("decisions / commands", f"{report.decisions} / {report.commands_sent}"),
        ("skipped (no-data/stale)", f"{report.skipped_no_data} / {report.skipped_stale}"),
        ("devices dead", report.devices_dead),
        ("alerts / quarantined", f"{report.alerts} / {report.quarantined_devices}"),
    ]
    width = max(len(label) for label, _ in rows)
    print(f"--- {report.name} ---", file=out)
    for label, value in rows:
        print(f"{label.ljust(width)} : {value}", file=out)


def cmd_list(args, out) -> int:
    print("available pilots:", file=out)
    descriptions = {
        "cbec": "Emilia-Romagna tomato, canal distribution, cloud deployment",
        "intercrop": "Cartagena lettuce, desalination source mix, cloud deployment",
        "guaspari": "Pinhal wine grape, regulated deficit, fog deployment",
        "matopiba": "Barreiras soybean, VRI center pivot, mobile-fog deployment",
    }
    for name in sorted(PILOT_BUILDERS):
        print(f"  {name.ljust(10)} {descriptions[name]}", file=out)
    return 0


def _print_metrics_summary(runner, out) -> None:
    metrics = runner.sim.metrics
    if not metrics.enabled:
        return
    print(
        "metrics: "
        f"{runner.sim.events_per_sec():,.0f} events/s kernel, "
        f"{metrics.total('mqtt.publishes_in'):.0f} messages published, "
        f"{metrics.total('context.notifications'):.0f} notifications delivered",
        file=out,
    )
    if runner.supervisor is not None:
        states = runner.supervisor.states()
        healthy = sum(1 for s in states.values() if s == "healthy")
        report = runner.report()
        print(
            "resilience: "
            f"{healthy}/{len(states)} services healthy, "
            f"{report.resilience_restarts} restarts, "
            f"{report.breaker_opens} breaker opens, "
            f"{report.degraded_episodes} degraded episodes, "
            f"{report.reconciled_decisions} decisions reconciled",
            file=out,
        )


def _write_run_artifacts(args, runner, out) -> None:
    """Profiler summary, Chrome-trace export and metrics snapshot."""
    if runner.profiler is not None:
        for line in runner.profiler.summary_lines(args.profile_top):
            print(line, file=out)
    if args.trace:
        try:
            with open(args.trace, "w", encoding="utf-8") as fh:
                json.dump(runner.tracer.chrome_trace(), fh, indent=1)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {args.trace!r}: {exc}")
        print(
            f"trace written to {args.trace} ({len(runner.tracer.spans())} spans)",
            file=out,
        )
    if args.metrics:
        try:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                fh.write(runner.sim.metrics.to_json())
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write metrics snapshot to {args.metrics!r}: {exc}")
        print(f"metrics snapshot written to {args.metrics}", file=out)


def cmd_run(args, out) -> int:
    if args.checkpoint is not None and args.restore is not None:
        raise SystemExit("--checkpoint and --restore are mutually exclusive")
    options = _options_from_args(args)
    try:
        result = run(options)
    except CheckpointError as exc:
        raise SystemExit(str(exc))
    runner = result.runner
    if args.restore is not None:
        print(f"restored from {args.restore}", file=out)
    elif args.checkpoint is not None:
        print(f"checkpoint written to {args.checkpoint}", file=out)
    _print_report(result.report, out)
    _print_metrics_summary(runner, out)
    if runner.fault_injector is not None:
        injector = runner.fault_injector
        fault_plan = options.faults
        print(
            f"faults: plan {fault_plan.name!r}, "
            f"{injector.injected} injected, {injector.recovered} recovered, "
            f"{injector.active_count} still active",
            file=out,
        )
    durability = getattr(runner, "durability", None)
    if durability is not None:
        store_report = durability.report()
        print(
            f"store: {store_report['appended']} records appended, "
            f"{store_report['committed']} committed across "
            f"{store_report['segments']} segments "
            f"({store_report['recoveries']} recoveries)",
            file=out,
        )
        compaction = store_report.get("compaction")
        if compaction is not None:
            print(
                f"columnar: {compaction['chunk_records']} records across "
                f"{compaction['chunks']} chunks "
                f"({compaction['compacted_segments']} segments compacted, "
                f"{compaction['dropped_chunks']} chunks dropped by retention)",
                file=out,
            )
    _write_run_artifacts(args, runner, out)
    return 0


def cmd_compare(args, out) -> int:
    preset = COMPARE_PRESETS.get(args.pilot, {})
    results = {}
    for kind in ("smart", "fixed"):
        results[kind] = run(
            _options_from_args(args, scheduler_kind=kind, pilot_kwargs=preset)
        )
    smart = results["smart"].report
    fixed = results["fixed"].report
    for report in (fixed, smart):
        _print_report(report, out)
        print(file=out)
    tariffs = Tariffs()
    smart_economics = price_season(smart, tariffs)
    fixed_economics = price_season(fixed, tariffs)
    benefit = deployment_benefit_eur(smart_economics, fixed_economics)
    water_saving = (
        1.0 - smart.irrigation_m3 / fixed.irrigation_m3 if fixed.irrigation_m3 else 0.0
    )
    print("--- business case: smart vs fixed calendar ---", file=out)
    print(f"water saved            : {water_saving:.1%}", file=out)
    print(f"input cost fixed       : EUR {fixed_economics.input_cost_eur:,.0f}", file=out)
    print(f"input cost smart       : EUR {smart_economics.input_cost_eur:,.0f}", file=out)
    print(f"season benefit (margin): EUR {benefit:,.0f}", file=out)
    # The smart arm carries the shared artifact flags (trace, profile,
    # metrics snapshot) so an A/B run can also be inspected span by span.
    _write_run_artifacts(args, results["smart"].runner, out)
    return 0


def cmd_serve(args, out) -> int:
    """Replay (or synthesize) a request trace against a running pilot."""
    from repro.service.loadgen import RequestTrace, standard_trace

    options = _options_from_args(args)
    if args.requests:
        try:
            trace = RequestTrace.load(args.requests)
        except (OSError, KeyError, ValueError) as exc:
            raise SystemExit(f"cannot read request trace {args.requests!r}: {exc}")
    else:
        # Synthesize the canonical multi-tenant workload for this pilot.
        # A probe build (construction only, nothing runs) supplies the
        # farm name and zone grid the trace's reads should target.
        probe = PILOT_BUILDERS[args.pilot](seed=args.seed)
        farm = probe.config.farm
        entity_ids = [
            f"urn:AgriParcel:{farm}:{r}-{c}"
            for r in range(probe.config.rows)
            for c in range(probe.config.cols)
        ]
        trace = standard_trace(
            seed=args.seed,
            duration_s=args.serve_duration,
            entity_ids=entity_ids,
            farm=farm,
        )
    if args.record:
        trace.save(args.record)
        print(f"request trace written to {args.record} "
              f"({len(trace.requests)} requests)", file=out)
    options.serve_trace = trace
    options.serve_responses = args.responses
    result = run(options)
    service = result.service
    report = service.report()
    print(f"--- service: {trace.name} ({len(trace.requests)} requests, "
          f"{len(trace.tenants)} tenants) ---", file=out)
    for name, stats in report["tenants"].items():
        print(
            f"  {name.ljust(10)} submitted {stats['submitted']:>5}  "
            f"ok {stats['completed']:>5}  429 {stats['rejected_quota']:>4}  "
            f"503 {stats['rejected_backlog']:>4}  "
            f"auth {stats['rejected_auth']:>3}",
            file=out,
        )
    latency = report["latency_s"]
    print(
        f"latency: p50 {latency['p50']:.3f}s  p95 {latency['p95']:.3f}s  "
        f"p99 {latency['p99']:.3f}s",
        file=out,
    )
    if report["cache"] is not None:
        cache = report["cache"]
        print(
            f"cache: {cache['hits']} hits / {cache['hits'] + cache['misses']} "
            f"lookups ({cache['hit_rate']:.1%}), {cache['invalidated']} invalidated",
            file=out,
        )
    if args.responses:
        print(f"response log written to {args.responses}", file=out)
    print(f"response digest: {report['digest']}", file=out)
    _write_run_artifacts(args, result.runner, out)
    return 0


def cmd_fleet(args, out) -> int:
    from repro.fleet import FleetOptions, run_fleet
    from repro.fleet.options import FleetError, parse_farm_specs

    try:
        options = FleetOptions(
            farms=parse_farm_specs(args.farms),
            seed=args.seed,
            days=args.days,
            epoch_days=args.epoch_days,
            workers=args.workers,
            executor=args.executor,
        )
        result = run_fleet(options)
    except FleetError as exc:
        raise SystemExit(str(exc))
    report = result.report
    print(f"--- fleet: {len(report.farms)} farms, {result.executor}, "
          f"{args.workers} worker(s) ---", file=out)
    for shard, farm in zip(result.shards, report.farms):
        print(
            f"  {shard.name.ljust(14)} yield {farm['relative_yield']:.3f}  "
            f"irrigation {farm['irrigation_m3']:.1f} m3  "
            f"telemetry {farm['measures_processed']}",
            file=out,
        )
    totals = report.totals
    print(
        f"totals: irrigation {totals['irrigation_m3']:.1f} m3, "
        f"mean yield {totals['relative_yield']:.3f}, "
        f"telemetry {totals['measures_processed']}, "
        f"{len(report.batches)} sync batches over "
        f"{len(report.cloud_epochs)} epochs",
        file=out,
    )
    print(
        f"kernel: {result.events_executed:,} events in "
        f"{result.wall_time_s:.1f}s wall",
        file=out,
    )
    print(f"fingerprint: {result.fingerprint}", file=out)
    return 0


def _options_parent() -> argparse.ArgumentParser:
    """The options block shared by ``run`` and ``compare``.

    One flag per :class:`RunOptions` knob, so the subcommands cannot
    drift apart — new run options land in both by construction.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--days", type=float, default=None,
                        help="truncate the season to N days")
    common.add_argument("--security", default="",
                        help=f"comma list of {','.join(SECURITY_FLAGS)}")
    common.add_argument("--metrics", default=None, metavar="PATH",
                        help="write a JSON metrics snapshot to PATH")
    common.add_argument("--faults", default=None, metavar="PATH",
                        help="run under the fault plan in this JSON file")
    common.add_argument("--resilience", action="store_true",
                        help="enable the supervision/backpressure/degraded-mode layer")
    common.add_argument("--trace", default=None, metavar="PATH",
                        help="trace the run and export Chrome-trace JSON to PATH")
    common.add_argument("--profile-top", dest="profile_top", type=int, default=None,
                        metavar="K",
                        help="profile the kernel and print the K hottest event keys")
    return common


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """Durable-store flags shared by ``run`` and ``serve``."""
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="write history through a durable segment store "
                             "under DIR (crash-recoverable)")
    parser.add_argument("--store-flush", dest="store_flush", type=float,
                        default=60.0, metavar="SECS",
                        help="fsync-barrier interval of the durable store "
                             "in sim-seconds (default 60)")
    parser.add_argument("--store-segment-bytes", dest="store_segment_bytes",
                        type=int, default=None, metavar="N",
                        help="WAL segment rotation threshold in bytes "
                             "(default 4 MiB)")
    parser.add_argument("--store-compact", dest="store_compact", type=float,
                        default=None, metavar="SECS",
                        help="compact sealed WAL segments into columnar "
                             "chunks every SECS sim-seconds (default: off)")
    parser.add_argument("--store-retention-age", dest="store_retention_age",
                        type=float, default=None, metavar="SECS",
                        help="drop columnar chunks whose newest sample is "
                             "older than SECS sim-seconds (implies compaction)")
    parser.add_argument("--store-retention-bytes", dest="store_retention_bytes",
                        type=int, default=None, metavar="N",
                        help="cap retained columnar bytes per tenant at N "
                             "(oldest chunks dropped first; implies compaction)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="SWAMP platform pilot runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available pilots")

    common = _options_parent()
    run_parser = sub.add_parser("run", parents=[common],
                                help="run one pilot season")
    run_parser.add_argument("pilot", nargs="?", default="matopiba",
                            choices=sorted(PILOT_BUILDERS))
    run_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                            help="write a restorable checkpoint to PATH during the run")
    run_parser.add_argument("--checkpoint-every", dest="checkpoint_every",
                            type=float, default=None, metavar="SECS",
                            help="checkpoint every SECS sim-seconds "
                                 "(default: once at mid-run)")
    run_parser.add_argument("--restore", default=None, metavar="PATH",
                            help="resume the run checkpointed at PATH "
                                 "(ignores the pilot/build flags)")
    _add_store_flags(run_parser)

    compare_parser = sub.add_parser("compare", parents=[common],
                                    help="smart vs fixed-calendar business case")
    compare_parser.add_argument("pilot", choices=sorted(PILOT_BUILDERS))

    serve_parser = sub.add_parser(
        "serve", parents=[common],
        help="replay a multi-tenant request trace against a running pilot")
    serve_parser.add_argument("pilot", nargs="?", default="matopiba",
                              choices=sorted(PILOT_BUILDERS))
    serve_parser.add_argument("--requests", default=None, metavar="PATH",
                              help="request-trace JSON to replay "
                                   "(default: synthesize the standard workload)")
    serve_parser.add_argument("--record", default=None, metavar="PATH",
                              help="save the (synthesized or loaded) trace to PATH")
    serve_parser.add_argument("--responses", default=None, metavar="PATH",
                              help="write the canonical response log to PATH")
    serve_parser.add_argument("--serve-duration", dest="serve_duration",
                              type=float, default=600.0, metavar="SECS",
                              help="synthesized trace length in sim-seconds "
                                   "(default 600)")
    _add_store_flags(serve_parser)

    fleet_parser = sub.add_parser("fleet", help="run a sharded multi-farm fleet")
    fleet_parser.add_argument("--farms", default="matopiba:2", metavar="SPEC",
                              help="comma list of pilot[:count] entries "
                                   "(default: matopiba:2)")
    fleet_parser.add_argument("--seed", type=int, default=0)
    fleet_parser.add_argument("--days", type=float, default=None,
                              help="truncate every farm's season to N days")
    fleet_parser.add_argument("--epoch-days", dest="epoch_days", type=float,
                              default=1.0,
                              help="epoch barrier spacing in days (default 1)")
    fleet_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (default 1)")
    fleet_parser.add_argument("--executor", default="auto",
                              choices=("auto", "inprocess", "multiprocessing"))
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(args, out)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "compare":
        return cmd_compare(args, out)
    if args.command == "serve":
        return cmd_serve(args, out)
    if args.command == "fleet":
        return cmd_fleet(args, out)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
