"""The north-facing multi-tenant NGSIv2 service.

:class:`NgsiService` is the in-process equivalent of the HTTP stack a
SWAMP deployment puts in front of Orion + STH-Comet for dashboards and
analytics consumers: an NGSIv2/STH route table, OAuth2 bearer
authentication through the existing ``security.auth`` PEP/PDP, per-tenant
namespace isolation and quotas, a version-invalidated response cache, and
a pump process that drains admitted requests on the simulation clock.

Request lifecycle (``submit``):

1. **route** — method+path match (404 unknown path, 405 wrong method);
2. **authenticate** — introspect the bearer token (401), resolve the
   tenant behind the principal (403);
3. **authorize** — PEP check of the route's action against the resource
   (the entity id for entity-scoped routes), then the tenant's own
   namespace prefix check (403);
4. **admit** — the tenant's quota window (429) and backlog queue (503);
5. **execute** — immediately (sync mode) or when the pump drains the
   backlog (queued mode); cacheable reads consult the response cache;
   handler errors translate through :mod:`repro.service.errors`.

Every request ends as one *record* — ``(seq, tenant, method, path,
at_s, done_s, status, cache, body)`` — and the canonical JSON response
log over those records is the bit-identity artifact: same seed + same
trace ⇒ byte-identical log (E19 asserts this; wall-clock timings are
reported separately and never enter the log).
"""

import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.context.broker import ContextBroker
from repro.context.delivery import DeliveryConfig, DeliveryManager, SimulatedEndpoint
from repro.context.entities import ContextEntity
from repro.context.errors import NotFoundError, QueryError
from repro.context.history import HOUR_S, MINUTE_S, HistoryQuery, ShortTermHistory
from repro.context.query import parse_filter_expression
from repro.context.subscriptions import Subscription
from repro.security.auth.oauth import OAuthError
from repro.security.auth.pdp import Policy
from repro.service.cache import ResponseCache
from repro.service.errors import (
    AuthenticationError,
    AuthorizationError,
    QuotaExceededError,
    ServiceOverloadedError,
    error_response,
)
from repro.service.http import Request, Response, Route, Router
from repro.service.tenancy import Tenant, TenantSpec
from repro.simkernel.errors import ReproError
from repro.simkernel.simulator import Simulator

__all__ = ["NgsiService", "ServiceConfig", "attach_service", "percentile"]

#: STH ``aggrPeriod`` values → rollup period seconds.
_AGGR_PERIODS = {"minute": MINUTE_S, "hour": HOUR_S}


@dataclass
class ServiceConfig:
    """Tuning knobs for one :class:`NgsiService` instance."""

    #: Drain admitted requests through a pump process every this many
    #: sim-seconds (queued mode); False = execute at submit time.
    queued: bool = True
    pump_interval_s: float = 1.0
    max_requests_per_tick: int = 256
    cache_enabled: bool = True
    cache_capacity: int = 1024
    #: Rollup periods enabled on the attached history (() = leave off).
    rollup_periods: Tuple[float, ...] = (MINUTE_S, HOUR_S)
    default_page_limit: int = 20
    max_page_limit: int = 1000
    #: Cap on retained request records (oldest dropped beyond this).
    max_records: int = 200_000
    #: Where STH reads come from: "auto" streams from the columnar store
    #: when the history has one bound, "memory"/"columnar" force a path.
    history_source: str = "auto"


def percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), int(round(p / 100.0 * len(ordered) + 0.5))))
    return ordered[rank - 1]


def _render_attribute(attr) -> Dict[str, Any]:
    return {"value": attr.value, "type": attr.attr_type, "metadata": dict(attr.metadata)}


def _render_entity(entity: ContextEntity, key_values: bool = False) -> Dict[str, Any]:
    body: Dict[str, Any] = {"id": entity.entity_id, "type": entity.entity_type}
    for name in sorted(entity.attributes):
        attr = entity.attributes[name]
        body[name] = attr.value if key_values else _render_attribute(attr)
    return body


def _body_attrs(body: Dict[str, Any]) -> Dict[str, Any]:
    """NGSIv2 attribute payload → plain values ({"value": v} or bare v)."""
    attrs: Dict[str, Any] = {}
    for name, payload in body.items():
        if name in ("id", "type"):
            continue
        if isinstance(payload, dict) and "value" in payload:
            attrs[name] = payload["value"]
        else:
            attrs[name] = payload
    return attrs


def _float_param(request: Request, name: str, default: float) -> float:
    raw = request.param(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise QueryError(f"parameter {name!r} must be a number, got {raw!r}")


def _int_param(request: Request, name: str, default: int, minimum: int = 0) -> int:
    raw = request.param(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise QueryError(f"parameter {name!r} must be an integer, got {raw!r}")
    if value < minimum:
        raise QueryError(f"parameter {name!r} must be >= {minimum}, got {value}")
    return value


class NgsiService:
    """In-process NGSIv2 + STH endpoint over a broker and its history."""

    def __init__(
        self,
        sim: Simulator,
        broker: ContextBroker,
        history: ShortTermHistory,
        security,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.sim = sim
        self.broker = broker
        self.history = history
        self.security = security
        self.config = config or ServiceConfig()
        if self.config.rollup_periods:
            history.enable_rollups(tuple(self.config.rollup_periods))
        self.cache: Optional[ResponseCache] = (
            ResponseCache(self.config.cache_capacity) if self.config.cache_enabled else None
        )
        if self.cache is not None:
            broker.update_hooks.append(self._on_broker_write)
        self._tenants: Dict[str, Tenant] = {}
        #: At-least-once notification fan-out; None until
        #: :meth:`enable_delivery` opts in (keeps default runs untouched).
        self.delivery: Optional[DeliveryManager] = None
        self.records: List[Dict[str, Any]] = []
        self._seq = 0
        self._pump = None
        self.wall_time_s = 0.0
        metrics = sim.metrics
        self._m_requests = metrics.counter("service.requests")
        self._m_rejected = {
            reason: metrics.counter("service.rejected", {"reason": reason})
            for reason in ("auth", "quota", "backlog")
        }
        self._m_cache = {
            result: metrics.counter("service.cache", {"result": result})
            for result in ("hit", "miss")
        }
        self.router = Router()
        self._install_routes()

    # -- wiring -----------------------------------------------------------

    def _install_routes(self) -> None:
        add = self.router.add
        add("GET", "/version", self._h_version, action=None)
        add("GET", "/v2/entities", self._h_list_entities, "ngsi.read", cacheable=True)
        add("POST", "/v2/entities", self._h_create_entity, "ngsi.write", writes=True)
        add("GET", "/v2/entities/{entity_id}", self._h_get_entity, "ngsi.read", cacheable=True)
        add("DELETE", "/v2/entities/{entity_id}", self._h_delete_entity, "ngsi.write",
            writes=True)
        add("PATCH", "/v2/entities/{entity_id}/attrs", self._h_update_attrs, "ngsi.write",
            writes=True)
        add("GET", "/v2/entities/{entity_id}/attrs/{attr}", self._h_get_attr, "ngsi.read",
            cacheable=True)
        add("GET",
            "/STH/v1/contextEntities/type/{entity_type}/id/{entity_id}/attributes/{attr}",
            self._h_sth, "sth.read", cacheable=True)
        add("POST", "/v2/subscriptions", self._h_create_sub, "ngsi.sub")
        add("GET", "/v2/subscriptions", self._h_list_subs, "ngsi.sub")
        add("GET", "/v2/subscriptions/{sub_id}", self._h_get_sub, "ngsi.sub")
        add("DELETE", "/v2/subscriptions/{sub_id}", self._h_delete_sub, "ngsi.sub")
        add("POST", "/v2/subscriptions/{sub_id}/replay", self._h_replay_sub, "ngsi.sub")

    def _on_broker_write(self, entity: ContextEntity, changed: List[str]) -> None:
        self.cache.note_write(entity.entity_id)

    def register_tenant(self, spec: TenantSpec) -> Tenant:
        """Enrol a tenant: IdM principal, OAuth2 token, PDP policies, cache scopes."""
        if spec.name in self._tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        if not (spec.read_prefixes or spec.write_prefixes):
            raise ValueError(f"tenant {spec.name!r} has an empty namespace")
        tenant = Tenant(spec)
        auth = self.security
        auth.identity.register(
            spec.name, spec.secret, kind="service", farm=auth.farm, roles={tenant.role}
        )
        readable = tuple(dict.fromkeys(tenant.read_prefixes + tenant.write_prefixes))
        read_pattern = "^(?:" + "|".join(re.escape(p) for p in readable) + ")"
        auth.pdp.add_policy(Policy(
            f"svc:{spec.name}:read", "permit", {"ngsi.read", "sth.read"},
            read_pattern, roles={tenant.role},
        ))
        if tenant.write_prefixes:
            write_pattern = "^(?:" + "|".join(re.escape(p) for p in tenant.write_prefixes) + ")"
            auth.pdp.add_policy(Policy(
                f"svc:{spec.name}:write", "permit", {"ngsi.write"},
                write_pattern, roles={tenant.role},
            ))
        # Collection routes check the *path* as resource; entity scoping
        # happens in the handler (results filtered to the namespace).
        auth.pdp.add_policy(Policy(
            f"svc:{spec.name}:paths", "permit", {"ngsi.read", "sth.read"},
            r"^/(?:v2|STH)/", roles={tenant.role},
        ))
        # Subscription management: path-scoped like the collection routes;
        # ownership (a tenant sees only its own subscriptions) is enforced
        # in the handlers.
        auth.pdp.add_policy(Policy(
            f"svc:{spec.name}:subs", "permit", {"ngsi.sub"},
            r"^/v2/subscriptions", roles={tenant.role},
        ))
        tenant.token = auth.oauth.client_credentials_grant(
            spec.name, spec.secret, scope="ngsi"
        ).access_token
        if self.cache is not None:
            for prefix in readable:
                self.cache.register_scope(prefix)
        self._tenants[spec.name] = tenant
        return tenant

    def tenant(self, name: str) -> Tenant:
        return self._tenants[name]

    def tenants(self) -> List[Tenant]:
        return [self._tenants[name] for name in sorted(self._tenants)]

    def tenant_token(self, name: str) -> str:
        """The tenant's current bearer token, re-granted if expired."""
        tenant = self._tenants[name]
        oauth = self.security.oauth
        if tenant.token is None or oauth.introspect(tenant.token) is None:
            tenant.token = oauth.client_credentials_grant(
                tenant.principal_id, tenant.spec.secret, scope="ngsi"
            ).access_token
        return tenant.token

    def enable_delivery(
        self,
        config: Optional[DeliveryConfig] = None,
        endpoints: Tuple[SimulatedEndpoint, ...] = (),
    ) -> DeliveryManager:
        """Stand up the at-least-once notification fan-out (idempotent).

        Until this is called the subscription routes refuse with 400 and
        nothing delivery-related is constructed — no pump process, no RNG
        streams — so runs that never opt in stay bit-identical.
        """
        if self.delivery is None:
            self.delivery = DeliveryManager(self.sim, config)
            self.delivery.start()
        for endpoint in endpoints:
            self.delivery.register_endpoint(endpoint)
        return self.delivery

    def _require_delivery(self) -> DeliveryManager:
        if self.delivery is None:
            raise QueryError(
                "notification delivery is not enabled on this service "
                "(call enable_delivery first)"
            )
        return self.delivery

    def start(self) -> None:
        """Spawn the pump process (queued mode; idempotent)."""
        if self.config.queued and self._pump is None:
            self._pump = self.sim.spawn(self._pump_loop(), name="service-pump")

    def _pump_loop(self):
        while True:
            self._drain_tick()
            yield self.config.pump_interval_s

    def _drain_tick(self) -> None:
        budget = self.config.max_requests_per_tick
        names = sorted(self._tenants)
        progress = True
        while budget > 0 and progress:
            progress = False
            for name in names:
                if budget <= 0:
                    break
                backlog = self._tenants[name].backlog
                if not backlog:
                    continue
                route, request, params, tenant, at_s = backlog.popleft()
                self._execute(route, request, params, tenant, at_s)
                budget -= 1
                progress = True

    # -- request path -----------------------------------------------------------

    def submit(self, request: Request) -> Optional[Response]:
        """Admit a request; queued-mode admissions return None (the
        response lands in the record log when the pump executes them)."""
        return self._accept(request, queue=self.config.queued and self._pump is not None)

    def handle(self, request: Request) -> Response:
        """Synchronous path: admit and execute now, regardless of mode."""
        response = self._accept(request, queue=False)
        assert response is not None
        return response

    def _accept(self, request: Request, queue: bool) -> Optional[Response]:
        at_s = self.sim.now
        self._m_requests.inc()
        route, params, path_exists = self.router.match(request.method, request.path)
        if route is None:
            if path_exists:
                response = Response(
                    405, {"error": "MethodNotAllowed",
                          "description": f"{request.method} not supported on {request.path}"},
                )
            else:
                response = error_response(NotFoundError(f"no route for {request.path}"))
            return self._record(request, None, at_s, response, cache_state="")
        if route.action is None:
            return self._execute(route, request, params, None, at_s)
        tenant: Optional[Tenant] = None
        try:
            tenant = self._authenticate(request)
            resource = self._resource_for(route, request, params)
            self._authorize(tenant, route, request, resource)
        except (ReproError, OAuthError) as exc:
            if tenant is not None:
                tenant.rejected_auth += 1
            self._m_rejected["auth"].inc()
            return self._record(request, tenant, at_s, error_response(exc), cache_state="")
        tenant.submitted += 1
        if not tenant.limiter.admit(at_s):
            tenant.rejected_quota += 1
            self._m_rejected["quota"].inc()
            response = error_response(QuotaExceededError(
                f"tenant {tenant.name!r} exceeded "
                f"{tenant.quota.max_requests_per_window} requests/"
                f"{tenant.quota.window_s:g}s"
            ))
            return self._record(request, tenant, at_s, response, cache_state="")
        if queue:
            if tenant.backlog.push((route, request, params, tenant, at_s)):
                return None
            tenant.rejected_backlog += 1
            self._m_rejected["backlog"].inc()
            response = error_response(ServiceOverloadedError(
                f"tenant {tenant.name!r} backlog full ({tenant.quota.max_backlog})"
            ))
            return self._record(request, tenant, at_s, response, cache_state="")
        return self._execute(route, request, params, tenant, at_s)

    def _authenticate(self, request: Request) -> Tenant:
        if not request.token:
            raise AuthenticationError("missing bearer token")
        token = self.security.oauth.introspect(request.token)
        if token is None:
            raise AuthenticationError("invalid or expired bearer token")
        tenant = self._tenants.get(token.principal_id)
        if tenant is None:
            raise AuthorizationError(
                f"principal {token.principal_id!r} is not a registered tenant"
            )
        return tenant

    def _resource_for(self, route: Route, request: Request, params: Dict[str, str]) -> str:
        entity_id = params.get("entity_id")
        if entity_id is not None:
            return entity_id
        if route.writes:
            body = request.body or {}
            entity_id = body.get("id")
            if not entity_id:
                raise QueryError("entity payload must carry an 'id'")
            return entity_id
        return request.path

    def _authorize(
        self, tenant: Tenant, route: Route, request: Request, resource: str
    ) -> None:
        if not self.security.pep.check(request.token, route.action, resource):
            raise AuthorizationError(
                f"{route.action} on {resource!r} denied for tenant {tenant.name!r}"
            )
        if resource != request.path:  # entity-scoped: namespace double-check
            allowed = tenant.may_write(resource) if route.writes else tenant.may_read(resource)
            if not allowed:
                raise AuthorizationError(
                    f"entity {resource!r} outside tenant {tenant.name!r} namespace"
                )

    def _execute(
        self,
        route: Route,
        request: Request,
        params: Dict[str, str],
        tenant: Optional[Tenant],
        at_s: float,
    ) -> Response:
        started = time.perf_counter()
        cache_state = ""
        cache_key = None
        response: Optional[Response] = None
        if route.cacheable and self.cache is not None and tenant is not None:
            cache_key = ResponseCache.key(
                tenant.name, request.method, request.path, request.params
            )
            response = self.cache.lookup(cache_key)
            cache_state = "HIT" if response is not None else "MISS"
            self._m_cache["hit" if response is not None else "miss"].inc()
        if response is None:
            try:
                response = route.handler(request, params, tenant)
            except (ReproError, OAuthError) as exc:
                response = error_response(exc)
            if cache_key is not None and response.ok:
                entity_id = params.get("entity_id")
                if entity_id is not None:
                    self.cache.store(cache_key, response, entity_deps=(entity_id,))
                else:
                    scopes = tuple(
                        dict.fromkeys(tenant.read_prefixes + tenant.write_prefixes)
                    )
                    self.cache.store(cache_key, response, scope_deps=scopes)
        self.wall_time_s += time.perf_counter() - started
        return self._record(request, tenant, at_s, response, cache_state)

    def _record(
        self,
        request: Request,
        tenant: Optional[Tenant],
        at_s: float,
        response: Response,
        cache_state: str,
    ) -> Response:
        if tenant is not None and response.ok:
            tenant.completed += 1
        self._seq += 1
        self.records.append({
            "seq": self._seq,
            "tenant": tenant.name if tenant is not None else "-",
            "method": request.method,
            "path": request.path,
            "params": dict(sorted(request.params.items())),
            "at_s": at_s,
            "done_s": self.sim.now,
            "status": response.status,
            "cache": cache_state,
            "body": response.body,
        })
        if len(self.records) > self.config.max_records:
            del self.records[: len(self.records) - self.config.max_records]
        return response

    # -- handlers -----------------------------------------------------------

    def _h_version(self, request: Request, params, tenant) -> Response:
        return Response(200, {"orion": {"version": "repro-ngsi/2.0"},
                              "sth": {"version": "repro-sth/1.0"}})

    def _h_list_entities(self, request: Request, params, tenant: Tenant) -> Response:
        limit = _int_param(request, "limit", self.config.default_page_limit, minimum=1)
        limit = min(limit, self.config.max_page_limit)
        offset = _int_param(request, "offset", 0)
        filters = None
        q = request.param("q")
        if q:
            filters = [parse_filter_expression(part) for part in q.split(";") if part]
        entities = self.broker.query(
            entity_type=request.param("type"),
            id_pattern=request.param("idPattern"),
            filters=filters,
        )
        scoped = tenant.scope_entities(entities)
        key_values = request.param("options") == "keyValues"
        page = scoped[offset:offset + limit]
        return Response(
            200,
            [_render_entity(e, key_values) for e in page],
            headers={"Fiware-Total-Count": str(len(scoped))},
        )

    def _h_create_entity(self, request: Request, params, tenant: Tenant) -> Response:
        body = request.body or {}
        entity_id = body.get("id")
        entity_type = body.get("type")
        if not entity_id or not entity_type:
            raise QueryError("entity payload must carry 'id' and 'type'")
        self.broker.create_entity(entity_id, entity_type, _body_attrs(body) or None)
        if self.cache is not None:
            self.cache.note_write(entity_id)
        return Response(201, None, headers={"Location": f"/v2/entities/{entity_id}"})

    def _h_get_entity(self, request: Request, params, tenant: Tenant) -> Response:
        entity = self.broker.get_entity(params["entity_id"])
        key_values = request.param("options") == "keyValues"
        return Response(200, _render_entity(entity, key_values))

    def _h_delete_entity(self, request: Request, params, tenant: Tenant) -> Response:
        entity_id = params["entity_id"]
        self.broker.delete_entity(entity_id)
        if self.cache is not None:
            self.cache.note_write(entity_id)
        return Response(204)

    def _h_update_attrs(self, request: Request, params, tenant: Tenant) -> Response:
        entity_id = params["entity_id"]
        attrs = _body_attrs(request.body or {})
        if not attrs:
            raise QueryError("attribute payload must not be empty")
        self.broker.get_entity(entity_id)  # 404 before write, Orion-style
        self.broker.update_attributes(entity_id, attrs)
        if self.cache is not None:
            self.cache.note_write(entity_id)
        return Response(204)

    def _h_get_attr(self, request: Request, params, tenant: Tenant) -> Response:
        entity = self.broker.get_entity(params["entity_id"])
        attr = entity.attribute(params["attr"])
        if attr is None:
            raise NotFoundError(
                f"entity {params['entity_id']!r} has no attribute {params['attr']!r}"
            )
        return Response(200, _render_attribute(attr))

    def _h_sth(self, request: Request, params, tenant: Tenant) -> Response:
        entity_id, attr = params["entity_id"], params["attr"]
        since = _float_param(request, "dateFrom", float("-inf"))
        until = _float_param(request, "dateTo", float("inf"))
        method = request.param("aggrMethod")
        if method is not None:
            period_name = request.param("aggrPeriod", "minute")
            period = _AGGR_PERIODS.get(period_name)
            if period is None:
                raise QueryError(
                    f"unknown aggrPeriod {period_name!r}; expected one of "
                    f"{sorted(_AGGR_PERIODS)}"
                )
            result = self.history.read(
                HistoryQuery(entity_id, attr, since=since, until=until,
                             period_s=period, method=method),
                source=self.config.history_source,
            )
            values = [{"origin": start, method: value}
                      for start, value in result.rows]
        else:
            last_n = request.param("lastN")
            if last_n is not None:
                result = self.history.read(
                    HistoryQuery(entity_id, attr,
                                 last_n=_int_param(request, "lastN", 0, minimum=1)),
                    source=self.config.history_source,
                )
                samples = result.rows
            else:
                result = self.history.read(
                    HistoryQuery(entity_id, attr, since=since, until=until),
                    source=self.config.history_source,
                )
                h_offset = _int_param(request, "hOffset", 0)
                h_limit = _int_param(
                    request, "hLimit", self.config.max_page_limit, minimum=1
                )
                samples = result.rows[h_offset:h_offset + h_limit]
            values = [{"recvTime": t, "attrValue": v} for t, v in samples]
        body = {
            "contextResponses": [{
                "contextElement": {
                    "id": entity_id,
                    "type": params["entity_type"],
                    "isPattern": False,
                    "attributes": [{"name": attr, "values": values}],
                },
                "statusCode": {"code": 200, "reasonPhrase": "OK"},
            }]
        }
        return Response(200, body)

    # -- subscription handlers ----------------------------------------------

    def _render_subscription(self, sub: Subscription) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "id": sub.subscription_id,
            "description": sub.description,
            "status": "active" if sub.active else "inactive",
            "subject": {
                "entities": [{
                    k: v for k, v in (
                        ("id", sub.entity_id),
                        ("idPattern", sub.id_regex.pattern if sub.id_regex else None),
                        ("type", sub.entity_type),
                    ) if v is not None
                }],
                "condition": {"attrs": sorted(sub.condition_attrs)},
            },
            "notification": {
                "attrs": sub.notify_attrs or [],
                "timesSent": sub.notifications_sent,
            },
            "throttling": sub.throttling_s,
        }
        if self.delivery is not None:
            body["delivery"] = self.delivery.subscription_status(sub.subscription_id)
        return body

    def _owned_subscription(self, tenant: Tenant, sub_id: str) -> Subscription:
        sub = self.broker.subscriptions.get(sub_id)
        if sub is None or sub.owner != tenant.name:
            # A foreign subscription reads as absent, not forbidden —
            # existence is itself tenant-private.
            raise NotFoundError(f"subscription {sub_id!r} not found")
        return sub

    def _h_create_sub(self, request: Request, params, tenant: Tenant) -> Response:
        delivery = self._require_delivery()
        body = request.body or {}
        subject = body.get("subject") or {}
        entities = (subject.get("entities") or [{}])[0]
        entity_id = entities.get("id")
        id_pattern = entities.get("idPattern")
        entity_type = entities.get("type")
        if entity_id is not None and not tenant.may_read(entity_id):
            raise AuthorizationError(
                f"entity {entity_id!r} outside tenant {tenant.name!r} namespace"
            )
        notification = body.get("notification") or {}
        endpoint_name = notification.get("endpoint")
        if not endpoint_name:
            raise QueryError("subscription payload must carry notification.endpoint")
        condition = (subject.get("condition") or {}).get("attrs")
        sub = Subscription(
            callback=lambda _n: None,
            entity_id=entity_id,
            id_pattern=id_pattern,
            entity_type=entity_type,
            condition_attrs=condition,
            notify_attrs=notification.get("attrs"),
            throttling_s=float(body.get("throttling", 0.0)),
            description=str(body.get("description", "")),
            owner=tenant.name,
        )
        delivery.bind_subscription(sub, tenant.name, endpoint_name)
        self.broker.subscribe(sub)
        tenant.subscription_ids.append(sub.subscription_id)
        return Response(
            201, None, headers={"Location": f"/v2/subscriptions/{sub.subscription_id}"}
        )

    def _h_list_subs(self, request: Request, params, tenant: Tenant) -> Response:
        subs = [
            self._render_subscription(sub)
            for sub_id, sub in sorted(self.broker.subscriptions.items())
            if sub.owner == tenant.name
        ]
        return Response(200, subs)

    def _h_get_sub(self, request: Request, params, tenant: Tenant) -> Response:
        sub = self._owned_subscription(tenant, params["sub_id"])
        return Response(200, self._render_subscription(sub))

    def _h_delete_sub(self, request: Request, params, tenant: Tenant) -> Response:
        sub = self._owned_subscription(tenant, params["sub_id"])
        self.broker.unsubscribe(sub.subscription_id)
        if sub.subscription_id in tenant.subscription_ids:
            tenant.subscription_ids.remove(sub.subscription_id)
        return Response(204)

    def _h_replay_sub(self, request: Request, params, tenant: Tenant) -> Response:
        delivery = self._require_delivery()
        sub = self._owned_subscription(tenant, params["sub_id"])
        replayed = delivery.replay(tenant.name, sub.subscription_id)
        return Response(200, {"replayed": replayed})

    # -- reporting -----------------------------------------------------------

    def response_log(self) -> str:
        """Canonical JSON-lines log of every record (the bit-identity artifact)."""
        return "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.records
        )

    def response_log_digest(self) -> str:
        return hashlib.sha256(self.response_log().encode("utf-8")).hexdigest()

    def report(self) -> Dict[str, Any]:
        by_status: Dict[int, int] = {}
        latencies: List[float] = []
        for record in self.records:
            by_status[record["status"]] = by_status.get(record["status"], 0) + 1
            # Latency is a served-request metric: admission rejections
            # (429/503) bounce at submit time with zero queueing and
            # would drag the percentiles toward the rejection rate
            # instead of the pump cadence.
            if record["status"] not in (429, 503):
                latencies.append(record["done_s"] - record["at_s"])
        tenants = {
            name: {
                "submitted": t.submitted,
                "completed": t.completed,
                "rejected_auth": t.rejected_auth,
                "rejected_quota": t.rejected_quota,
                "rejected_backlog": t.rejected_backlog,
            }
            for name, t in sorted(self._tenants.items())
        }
        cache = None
        if self.cache is not None:
            cache = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "invalidated": self.cache.invalidated,
                "evicted": self.cache.evicted,
                "hit_rate": self.cache.hit_rate,
                "entries": len(self.cache),
            }
        return {
            "requests": len(self.records),
            "by_status": {str(k): v for k, v in sorted(by_status.items())},
            "tenants": tenants,
            "cache": cache,
            "delivery": self.delivery.report() if self.delivery is not None else None,
            "latency_s": {
                "p50": percentile(latencies, 50.0),
                "p95": percentile(latencies, 95.0),
                "p99": percentile(latencies, 99.0),
                "max": max(latencies) if latencies else 0.0,
            },
            "wall_time_s": self.wall_time_s,
            "digest": self.response_log_digest(),
        }


def attach_service(
    runner,
    config: Optional[ServiceConfig] = None,
    tenants: Tuple[TenantSpec, ...] = (),
) -> NgsiService:
    """Stand an :class:`NgsiService` up over a pilot runner's broker.

    Strictly additive: nothing about the pilot's own event schedule
    changes until requests are submitted (rollup folding and cache
    version bumps are pure accounting on existing hooks).
    """
    service = NgsiService(
        runner.sim, runner.context, runner.history, runner.security, config
    )
    for spec in tenants:
        service.register_tenant(spec)
    service.start()
    return service
