"""Tenants: identity, entity-namespace isolation and admission control.

A tenant is one consumer of the north-facing API — a farm dashboard, an
analytics job, an operations console.  Each tenant gets:

* an **IdM principal** (``kind="service"``) with a per-tenant role, and an
  OAuth2 client-credentials token it must present as bearer on every
  request (enforced through the existing ``security.auth`` PEP/PDP);
* an **entity namespace**: prefix lists bounding which entity ids it may
  read and write.  Isolation is enforced twice — PDP policies scoped to
  the tenant's role, and a service-side prefix check that also scopes
  collection queries (a tenant can never see another tenant's entities
  in a listing, not just fail to fetch them);
* **admission control** reusing the resilience primitives: a
  :class:`~repro.resilience.backpressure.RateLimiter` quota window
  (over-quota → 429) in front of a
  :class:`~repro.resilience.backpressure.BoundedQueue` backlog
  (burst beyond backlog capacity → 503).  Both are driven by sim time
  and never draw randomness, so admission decisions are deterministic.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.resilience.backpressure import BoundedQueue, DropPolicy, RateLimiter

__all__ = ["Tenant", "TenantQuota", "TenantSpec"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission budget.

    ``max_requests_per_window`` requests are admitted per ``window_s``
    seconds of *simulation* time; beyond that the service answers 429
    until the window rolls.  ``max_backlog`` bounds how many admitted
    requests may wait in the tenant's queue for the service pump; beyond
    that the service answers 503.
    """

    max_requests_per_window: int = 600
    window_s: float = 60.0
    max_backlog: int = 64


@dataclass(frozen=True)
class TenantSpec:
    """Declarative tenant definition — the serializable half of a tenant.

    This is what request traces carry: replaying a trace re-registers the
    same tenants (same names, secrets, namespaces, quotas) so the same
    seed reproduces the same tokens and the same admission decisions.
    """

    name: str
    secret: str
    read_prefixes: Tuple[str, ...]
    write_prefixes: Tuple[str, ...] = ()
    quota: TenantQuota = field(default_factory=TenantQuota)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "secret": self.secret,
            "read_prefixes": list(self.read_prefixes),
            "write_prefixes": list(self.write_prefixes),
            "quota": {
                "max_requests_per_window": self.quota.max_requests_per_window,
                "window_s": self.quota.window_s,
                "max_backlog": self.quota.max_backlog,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TenantSpec":
        quota = data.get("quota") or {}
        return cls(
            name=data["name"],
            secret=data["secret"],
            read_prefixes=tuple(data.get("read_prefixes", ())),
            write_prefixes=tuple(data.get("write_prefixes", ())),
            quota=TenantQuota(
                max_requests_per_window=int(quota.get("max_requests_per_window", 600)),
                window_s=float(quota.get("window_s", 60.0)),
                max_backlog=int(quota.get("max_backlog", 64)),
            ),
        )


class Tenant:
    """One registered tenant: spec + live admission/auth state."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.read_prefixes = tuple(spec.read_prefixes)
        self.write_prefixes = tuple(spec.write_prefixes)
        self.quota = spec.quota
        self.limiter = RateLimiter(
            spec.quota.max_requests_per_window,
            spec.quota.window_s,
            policy=DropPolicy.REJECT,
        )
        self.backlog = BoundedQueue(spec.quota.max_backlog, policy=DropPolicy.REJECT)
        #: Bearer token issued at registration (rotated on expiry).
        self.token: Optional[str] = None
        self.principal_id = spec.name
        # Admission accounting (the service also mirrors these into the
        # metrics registry; plain ints keep the report path allocation-free).
        self.submitted = 0
        self.completed = 0
        self.rejected_quota = 0
        self.rejected_backlog = 0
        self.rejected_auth = 0
        #: Subscription ids this tenant created through the service (the
        #: delivery manager keys queues by tenant name; this is the
        #: reverse index for per-tenant teardown and status pages).
        self.subscription_ids: List[str] = []

    @property
    def role(self) -> str:
        """The PDP role binding this tenant's policies to its principal."""
        return f"svc-tenant:{self.name}"

    def may_read(self, entity_id: str) -> bool:
        return any(entity_id.startswith(p) for p in self.read_prefixes) or any(
            entity_id.startswith(p) for p in self.write_prefixes
        )

    def may_write(self, entity_id: str) -> bool:
        return any(entity_id.startswith(p) for p in self.write_prefixes)

    def scope_entities(self, entities: List) -> List:
        """Filter a query result down to this tenant's readable namespace."""
        return [e for e in entities if self.may_read(e.entity_id)]
