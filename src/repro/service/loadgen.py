"""Seeded multi-tenant load generation and request-trace replay.

A :class:`RequestTrace` is the serializable unit of load: the tenant
specs plus a time-ordered list of requests.  Traces round-trip through
JSON (``save``/``load``) so the CLI can record one, replay it against a
running pilot, and ``cmp`` the response logs — the E19 bit-identity
check (same seed + same trace ⇒ byte-identical log).

Generation is driven by a plain ``random.Random(seed)`` — traces are
offline artifacts, independent of any simulation's RNG streams, so
generating one never perturbs a run.  Replay schedules each request at
its absolute arrival time on the simulation clock and resolves bearer
tokens at fire time (tenants re-grant on expiry, so multi-week traces
survive token TTLs deterministically).
"""

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.app import NgsiService
from repro.service.http import Request
from repro.service.tenancy import TenantSpec

__all__ = [
    "LoadProfile",
    "RequestTrace",
    "TraceRequest",
    "generate_trace",
    "schedule_trace",
    "standard_trace",
]

#: Request kinds a :class:`LoadProfile` mix can draw from.
KINDS = ("list", "entity", "attr", "sth_raw", "sth_rollup", "write")


@dataclass(frozen=True)
class TraceRequest:
    """One request arrival in a trace."""

    at_s: float
    tenant: str
    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    body: Optional[Dict[str, Any]] = None
    #: Explicit bearer token override; None = the tenant's live token,
    #: resolved at fire time.  Set to a bogus string to exercise 401s.
    token: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "at_s": self.at_s,
            "tenant": self.tenant,
            "method": self.method,
            "path": self.path,
        }
        if self.params:
            data["params"] = dict(sorted(self.params.items()))
        if self.body is not None:
            data["body"] = self.body
        if self.token is not None:
            data["token"] = self.token
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceRequest":
        return cls(
            at_s=float(data["at_s"]),
            tenant=data["tenant"],
            method=data["method"],
            path=data["path"],
            params=dict(data.get("params", {})),
            body=data.get("body"),
            token=data.get("token"),
        )


@dataclass
class RequestTrace:
    """Tenants + time-ordered request arrivals, JSON round-trippable."""

    name: str
    seed: int
    tenants: List[TenantSpec]
    requests: List[TraceRequest]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "tenants": [spec.to_dict() for spec in self.tenants],
            "requests": [request.to_dict() for request in self.requests],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RequestTrace":
        return cls(
            name=data.get("name", "trace"),
            seed=int(data.get("seed", 0)),
            tenants=[TenantSpec.from_dict(t) for t in data.get("tenants", [])],
            requests=[TraceRequest.from_dict(r) for r in data.get("requests", [])],
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "RequestTrace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    @property
    def duration_s(self) -> float:
        return max((r.at_s for r in self.requests), default=0.0)


@dataclass(frozen=True)
class LoadProfile:
    """One tenant's traffic shape: mean arrival interval + request mix.

    ``mix`` maps request kinds (see :data:`KINDS`) to weights; arrivals
    are exponential around ``interval_s`` starting at ``start_s``.
    """

    spec: TenantSpec
    interval_s: float
    mix: Dict[str, float]
    start_s: float = 0.0

    def __post_init__(self) -> None:
        for kind in self.mix:
            if kind not in KINDS:
                raise ValueError(f"unknown request kind {kind!r}; expected one of {KINDS}")


def _pick(rng: random.Random, mix: Dict[str, float]) -> str:
    kinds = sorted(mix)
    total = sum(mix[k] for k in kinds)
    roll = rng.random() * total
    acc = 0.0
    for kind in kinds:
        acc += mix[kind]
        if roll <= acc:
            return kind
    return kinds[-1]


def generate_trace(
    name: str,
    seed: int,
    duration_s: float,
    profiles: Sequence[LoadProfile],
    entity_ids: Sequence[str],
    entity_type: str = "AgriParcel",
    attr: str = "soilMoisture",
) -> RequestTrace:
    """Seeded synthetic load: same arguments ⇒ the identical trace.

    Read kinds target ``entity_ids`` (the pilot's own entities);
    ``write`` kinds target the tenant's first write prefix, creating
    ``<prefix>station-<i>`` entities on first touch and PATCHing them
    after.  Tenants with no write prefix fall back to reads.
    """
    requests: List[TraceRequest] = []
    for profile in profiles:
        spec = profile.spec
        rng = random.Random(f"{seed}:{name}:{spec.name}")
        readable = [
            e for e in entity_ids
            if any(e.startswith(p) for p in spec.read_prefixes + spec.write_prefixes)
        ]
        created: List[str] = []
        t = profile.start_s + rng.expovariate(1.0 / profile.interval_s)
        while t <= duration_s:
            kind = _pick(rng, profile.mix)
            if kind == "write" and not spec.write_prefixes:
                kind = "list"
            if kind in ("entity", "attr", "sth_raw", "sth_rollup") and not readable:
                kind = "list"
            if kind == "list":
                requests.append(TraceRequest(
                    t, spec.name, "GET", "/v2/entities",
                    params={"type": entity_type, "limit": "100"},
                ))
            elif kind == "entity":
                target = readable[rng.randrange(len(readable))]
                requests.append(TraceRequest(
                    t, spec.name, "GET", f"/v2/entities/{target}"
                ))
            elif kind == "attr":
                target = readable[rng.randrange(len(readable))]
                requests.append(TraceRequest(
                    t, spec.name, "GET", f"/v2/entities/{target}/attrs/{attr}"
                ))
            elif kind == "sth_raw":
                target = readable[rng.randrange(len(readable))]
                requests.append(TraceRequest(
                    t, spec.name, "GET",
                    f"/STH/v1/contextEntities/type/{entity_type}/id/{target}"
                    f"/attributes/{attr}",
                    params={"lastN": "20"},
                ))
            elif kind == "sth_rollup":
                target = readable[rng.randrange(len(readable))]
                requests.append(TraceRequest(
                    t, spec.name, "GET",
                    f"/STH/v1/contextEntities/type/{entity_type}/id/{target}"
                    f"/attributes/{attr}",
                    params={"aggrMethod": "mean", "aggrPeriod": "hour"},
                ))
            else:  # write
                prefix = spec.write_prefixes[0]
                if not created or rng.random() < 0.1:
                    entity_id = f"{prefix}station-{len(created)}"
                    created.append(entity_id)
                    requests.append(TraceRequest(
                        t, spec.name, "POST", "/v2/entities",
                        body={"id": entity_id, "type": "OpsStation",
                              "status": {"value": "idle", "type": "Text"}},
                    ))
                else:
                    entity_id = created[rng.randrange(len(created))]
                    requests.append(TraceRequest(
                        t, spec.name, "PATCH", f"/v2/entities/{entity_id}/attrs",
                        body={"reading": {"value": round(rng.random(), 6)}},
                    ))
            t += rng.expovariate(1.0 / profile.interval_s)
    requests.sort(key=lambda r: (r.at_s, r.tenant, r.method, r.path))
    return RequestTrace(
        name=name,
        seed=seed,
        tenants=[p.spec for p in profiles],
        requests=requests,
    )


def standard_trace(
    seed: int,
    duration_s: float,
    entity_ids: Sequence[str],
    entity_type: str = "AgriParcel",
    attr: str = "soilMoisture",
    farm: str = "pilot",
) -> RequestTrace:
    """The canonical E19 workload: four tenants over one pilot.

    * ``dash-a``/``dash-b`` — read-heavy dashboards with generous quotas
      over the pilot's entity namespace (repeat reads → cache hits);
    * ``ops`` — a writer to its own ``urn:Ops:`` namespace plus light
      reads of the pilot;
    * ``greedy`` — a misbehaving client with a tiny quota submitting far
      above it: must collect 429s without disturbing the other tenants.
    """
    from repro.service.tenancy import TenantQuota

    pilot_prefix = f"urn:AgriParcel:{farm}:"
    dashboard_mix = {
        "list": 2.0, "entity": 3.0, "attr": 2.0, "sth_raw": 2.0, "sth_rollup": 1.0,
    }
    profiles = [
        LoadProfile(
            TenantSpec("dash-a", "dash-a-secret", (pilot_prefix,),
                       quota=TenantQuota(600, 60.0, 256)),
            interval_s=2.0, mix=dashboard_mix,
        ),
        LoadProfile(
            TenantSpec("dash-b", "dash-b-secret", (pilot_prefix,),
                       quota=TenantQuota(600, 60.0, 256)),
            interval_s=3.0, mix=dashboard_mix, start_s=0.5,
        ),
        LoadProfile(
            TenantSpec("ops", "ops-secret", (pilot_prefix,),
                       write_prefixes=(f"urn:Ops:{farm}:",),
                       quota=TenantQuota(600, 60.0, 256)),
            interval_s=4.0, mix={"write": 3.0, "list": 1.0, "entity": 1.0}, start_s=1.0,
        ),
        LoadProfile(
            TenantSpec("greedy", "greedy-secret", (pilot_prefix,),
                       quota=TenantQuota(10, 60.0, 16)),
            interval_s=0.5, mix={"entity": 1.0, "list": 1.0}, start_s=0.25,
        ),
    ]
    return generate_trace(
        "standard-e19", seed, duration_s, profiles, entity_ids, entity_type, attr
    )


def schedule_trace(service: NgsiService, trace: RequestTrace) -> int:
    """Register the trace's tenants and schedule every request arrival.

    Returns the number of requests scheduled.  Tenants already registered
    on the service (by name) are left as-is, so a trace can replay
    against a service that pre-registered its tenants.
    """
    for spec in trace.tenants:
        if spec.name not in {t.name for t in service.tenants()}:
            service.register_tenant(spec)
    service.start()

    def fire(request: TraceRequest) -> None:
        token = request.token
        if token is None:
            token = service.tenant_token(request.tenant)
        service.submit(Request(
            method=request.method,
            path=request.path,
            params=dict(request.params),
            body=request.body,
            token=token,
        ))

    for request in trace.requests:
        service.sim.schedule_at(
            request.at_s, fire, (request,), label=f"svc:{request.tenant}"
        )
    return len(trace.requests)
