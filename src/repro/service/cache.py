"""Read-path response cache with entity-version invalidation.

Dashboard traffic is dominated by a small set of repeated reads (the
same entity listing, the same history panel, refreshed every few
seconds) between comparatively rare writes (a probe reports every 30
simulated minutes).  The cache exploits that: responses to cacheable GET
routes are stored under ``(tenant, method, path, params)`` and served
until any entity they depend on changes.

Two dependency shapes cover every read route:

* **entity deps** — single-entity reads record the exact entity version
  (a monotone counter bumped on every write to that id);
* **scope deps** — collection and history reads record the version of
  each namespace *scope* (entity-id prefix) they can observe; any write
  under the prefix bumps the scope, invalidating every listing that
  could have included it.  Prefixes are registered per tenant, so one
  tenant's writes never invalidate another tenant's disjoint listings.

Versions are bumped from the context broker's update hook (device
telemetry landing through the IoT agent) and from the service's own
write handlers (which also cover deletes and attribute-less creates,
paths the broker hook does not report).  Entries are LRU-evicted at
``capacity``.  Nothing here reads the clock or draws randomness — hit
patterns are a pure function of the request/write interleaving, which
is itself deterministic.
"""

from collections import OrderedDict
from typing import Dict, Iterable, Optional, Tuple

from repro.service.http import Response

__all__ = ["ResponseCache"]

CacheKey = Tuple[str, str, str, Tuple[Tuple[str, str], ...]]


class ResponseCache:
    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        # key -> (entity_deps, scope_deps, status, body) where each dep is
        # (name, version-at-capture).
        self._entries: "OrderedDict[CacheKey, tuple]" = OrderedDict()
        self._entity_versions: Dict[str, int] = {}
        self._scope_versions: Dict[str, int] = {}
        self._version_seq = 0
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evicted = 0

    @staticmethod
    def key(tenant: str, method: str, path: str, params: Dict[str, str]) -> CacheKey:
        return (tenant, method, path, tuple(sorted(params.items())))

    # -- invalidation feeds --------------------------------------------------

    def register_scope(self, prefix: str) -> None:
        self._scope_versions.setdefault(prefix, 0)

    def note_write(self, entity_id: str) -> None:
        """Record a mutation of ``entity_id`` (update, create or delete)."""
        self._version_seq += 1
        version = self._version_seq
        self._entity_versions[entity_id] = version
        for prefix in self._scope_versions:
            if entity_id.startswith(prefix):
                self._scope_versions[prefix] = version

    def entity_version(self, entity_id: str) -> int:
        return self._entity_versions.get(entity_id, 0)

    def scope_version(self, prefix: str) -> int:
        return self._scope_versions.get(prefix, 0)

    # -- lookup / store --------------------------------------------------

    def lookup(self, key: CacheKey) -> Optional[Response]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        entity_deps, scope_deps, status, body = entry
        for entity_id, version in entity_deps:
            if self._entity_versions.get(entity_id, 0) != version:
                del self._entries[key]
                self.invalidated += 1
                self.misses += 1
                return None
        for prefix, version in scope_deps:
            if self._scope_versions.get(prefix, 0) != version:
                del self._entries[key]
                self.invalidated += 1
                self.misses += 1
                return None
        self._entries.move_to_end(key)
        self.hits += 1
        return Response(status, body, {"X-Cache": "HIT"})

    def store(
        self,
        key: CacheKey,
        response: Response,
        entity_deps: Iterable[str] = (),
        scope_deps: Iterable[str] = (),
    ) -> None:
        entry = (
            tuple((e, self._entity_versions.get(e, 0)) for e in entity_deps),
            tuple((p, self._scope_versions.get(p, 0)) for p in scope_deps),
            response.status,
            response.body,
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evicted += 1

    # -- stats --------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)
