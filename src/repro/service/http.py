"""HTTP-shaped request/response objects and the method+path router.

The north-facing service layer is *in-process*: no sockets, no threads,
no wire format.  A :class:`Request` is what an HTTP frontend would have
parsed already (method, path, query params, JSON body, bearer token) and
a :class:`Response` is what it would serialize back.  Keeping the shapes
HTTP-faithful means the NGSIv2 paths, status codes and error bodies match
what a real Orion/STH-Comet deployment would return, while the whole
request path stays deterministic and runs inside the simulation kernel.

Routing is a flat method+path table: patterns like
``/v2/entities/{entity_id}/attrs/{attr}`` compile to anchored regexes
with named groups.  :meth:`Router.match` distinguishes "no such path"
(404) from "path exists, wrong method" (405) the way an HTTP framework
would.
"""

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Request", "Response", "Route", "Router"]

#: Path-template parameter segment: ``{name}`` → named regex group
#: matching one path segment (no slashes).
_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile_template(template: str) -> re.Pattern:
    pattern = "".join(
        f"(?P<{part[1:-1]}>[^/]+)" if _PARAM_RE.fullmatch(part) else re.escape(part)
        for part in re.split(r"(\{[a-zA-Z_][a-zA-Z0-9_]*\})", template)
    )
    return re.compile(f"^{pattern}$")


@dataclass(frozen=True)
class Request:
    """One north-facing API request, as an HTTP frontend would parse it."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    body: Optional[Dict[str, Any]] = None
    #: OAuth2 bearer token (the ``Authorization: Bearer …`` header).
    token: Optional[str] = None

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.params.get(name, default)


@dataclass
class Response:
    """Status + JSON body + headers, as the frontend would serialize it."""

    status: int
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass(frozen=True)
class Route:
    """One routing-table row: method + path template + handler + action.

    ``action`` is the PDP action string the PEP checks for this endpoint
    (``"ngsi.read"``, ``"ngsi.write"``, ``"sth.read"``); ``None`` marks a
    public endpoint (``/version``).  ``writes`` marks mutating routes so
    the dispatcher applies write-side namespace checks and cache
    invalidation; ``cacheable`` marks idempotent reads the response cache
    may serve.
    """

    method: str
    template: str
    handler: Callable
    action: Optional[str]
    writes: bool = False
    cacheable: bool = False
    regex: re.Pattern = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "regex", _compile_template(self.template))


class Router:
    """Ordered method+path dispatch table."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(
        self,
        method: str,
        template: str,
        handler: Callable,
        action: Optional[str],
        writes: bool = False,
        cacheable: bool = False,
    ) -> Route:
        route = Route(method.upper(), template, handler, action, writes, cacheable)
        self._routes.append(route)
        return route

    def match(self, method: str, path: str) -> Tuple[Optional[Route], Dict[str, str], bool]:
        """Resolve ``(route, path_params, path_exists)``.

        ``route`` is None on a miss; ``path_exists`` then tells a 405
        (some other method serves this path) apart from a 404.
        """
        method = method.upper()
        path_exists = False
        for route in self._routes:
            found = route.regex.match(path)
            if found is None:
                continue
            if route.method != method:
                path_exists = True
                continue
            return route, found.groupdict(), True
        return None, {}, path_exists

    def routes(self) -> List[Route]:
        return list(self._routes)
