"""North-facing multi-tenant NGSIv2 service layer.

The in-process equivalent of the HTTP front a SWAMP deployment puts
between consumers (dashboards, analytics, operations tooling) and the
context platform: NGSIv2 + STH routes, OAuth2 bearer enforcement via the
existing PEP/PDP, per-tenant namespaces and quotas, a version-invalidated
response cache, and seeded load generation with replayable request
traces.  See DESIGN.md ("Service layer").
"""

from repro.service.app import NgsiService, ServiceConfig, attach_service, percentile
from repro.service.cache import ResponseCache
from repro.service.errors import (
    AuthenticationError,
    AuthorizationError,
    QuotaExceededError,
    ServiceError,
    ServiceOverloadedError,
    error_response,
    has_error_mapping,
    status_for,
)
from repro.service.http import Request, Response, Route, Router
from repro.service.loadgen import (
    LoadProfile,
    RequestTrace,
    TraceRequest,
    generate_trace,
    schedule_trace,
    standard_trace,
)
from repro.service.tenancy import Tenant, TenantQuota, TenantSpec

__all__ = [
    "AuthenticationError",
    "AuthorizationError",
    "LoadProfile",
    "NgsiService",
    "QuotaExceededError",
    "Request",
    "RequestTrace",
    "Response",
    "ResponseCache",
    "Route",
    "Router",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "Tenant",
    "TenantQuota",
    "TenantSpec",
    "TraceRequest",
    "attach_service",
    "error_response",
    "generate_trace",
    "has_error_mapping",
    "percentile",
    "schedule_trace",
    "standard_trace",
    "status_for",
]
