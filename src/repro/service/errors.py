"""One table from the ``ReproError`` hierarchy to NGSIv2-style responses.

Every failure the platform can raise on a request path maps to exactly
one HTTP status + NGSIv2 error name here, so the service layer never
hand-rolls status codes and the mapping is testable exhaustively: the
facade test walks every exception class exported from ``repro.api`` and
asserts it resolves through this table (see ``tests/test_service.py``).

Resolution walks the exception's MRO and takes the first class present
in the table, so subclasses inherit their base's mapping unless they
carry their own row (e.g. ``NotFoundError`` → 404 while its base
``ContextError`` → 400).
"""

from typing import Dict, Tuple, Type

from repro.context.errors import (
    AlreadyExistsError,
    ContextError,
    NotFoundError,
    QueryError,
)
from repro.faults.plan import FaultPlanError
from repro.fleet.options import FleetError
from repro.mqtt.broker import RoutingMismatchError
from repro.mqtt.topics import TopicError
from repro.platform.registry import PlatformError
from repro.resilience.backpressure import BackpressureError
from repro.security.auth.oauth import OAuthError
from repro.service.http import Response
from repro.simkernel.errors import ReproError, SimulationError, SnapshotError
from repro.store.segment import StoreError

__all__ = [
    "AuthenticationError",
    "AuthorizationError",
    "QuotaExceededError",
    "ServiceError",
    "ServiceOverloadedError",
    "error_response",
    "has_error_mapping",
    "status_for",
]


class ServiceError(ReproError):
    """Base error for the north-facing service layer."""


class AuthenticationError(ServiceError):
    """Missing, invalid, expired or revoked bearer token (→ 401)."""


class AuthorizationError(ServiceError):
    """Authenticated principal lacks access to the resource (→ 403)."""


class QuotaExceededError(ServiceError):
    """The tenant's request-rate quota window is exhausted (→ 429)."""


class ServiceOverloadedError(ServiceError):
    """The tenant's admission backlog is full (→ 503)."""


def _checkpoint_error() -> Type[Exception]:
    # Imported lazily: repro.core pulls in the whole pilot assembly, which
    # the service layer must not load just to build the mapping table.
    from repro.core.checkpoint import CheckpointError

    return CheckpointError


#: status code + NGSIv2 ``error`` field per exception class.  Order is
#: irrelevant (resolution is by MRO walk), but rows are grouped from the
#: service layer outward for readability.
_TABLE: Dict[Type[BaseException], Tuple[int, str]] = {
    # Service admission / auth.
    AuthenticationError: (401, "Unauthorized"),
    AuthorizationError: (403, "Forbidden"),
    QuotaExceededError: (429, "TooManyRequests"),
    ServiceOverloadedError: (503, "ServiceUnavailable"),
    ServiceError: (500, "InternalServerError"),
    OAuthError: (401, "Unauthorized"),
    # Context broker (Orion statuses: 404 unknown entity, 422 duplicate
    # create, 400 malformed query).
    NotFoundError: (404, "NotFound"),
    AlreadyExistsError: (422, "Unprocessable"),
    QueryError: (400, "BadRequest"),
    ContextError: (400, "BadRequest"),
    # Messaging / plans: caller-supplied specs that failed validation.
    TopicError: (400, "BadRequest"),
    FaultPlanError: (400, "BadRequest"),
    # Backpressure outside the tenant quota path (broker shedding load).
    BackpressureError: (503, "ServiceUnavailable"),
    # Platform-side failures: nothing the caller can fix.
    StoreError: (500, "InternalServerError"),
    RoutingMismatchError: (500, "InternalServerError"),
    SnapshotError: (500, "InternalServerError"),
    SimulationError: (500, "InternalServerError"),
    PlatformError: (500, "InternalServerError"),
    FleetError: (500, "InternalServerError"),
    ReproError: (500, "InternalServerError"),
}


def _resolve(exc_type: Type[BaseException]) -> Tuple[int, str]:
    table = _full_table()
    for cls in exc_type.__mro__:
        row = table.get(cls)
        if row is not None:
            return row
    return (500, "InternalServerError")


_cached_full_table: Dict[Type[BaseException], Tuple[int, str]] = {}


def _full_table() -> Dict[Type[BaseException], Tuple[int, str]]:
    if not _cached_full_table:
        _cached_full_table.update(_TABLE)
        _cached_full_table[_checkpoint_error()] = (500, "InternalServerError")
    return _cached_full_table


def has_error_mapping(exc_type: Type[BaseException]) -> bool:
    """True when ``exc_type`` (or a base of it) has a row in the table."""
    table = _full_table()
    return any(cls in table for cls in exc_type.__mro__)


def status_for(exc: BaseException) -> int:
    """The HTTP status an exception (instance or class) maps to."""
    exc_type = exc if isinstance(exc, type) else type(exc)
    return _resolve(exc_type)[0]


def error_response(exc: BaseException) -> Response:
    """Translate a raised platform error into its NGSIv2 response."""
    exc_type = exc if isinstance(exc, type) else type(exc)
    status, name = _resolve(exc_type)
    description = "" if isinstance(exc, type) else str(exc)
    return Response(status, {"error": name, "description": description})
