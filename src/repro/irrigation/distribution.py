"""Canal water distribution (the CBEC pilot).

Consorzio di Bonifica Emilia Centrale distributes reservoir water through a
canal tree to member farms; the pilot's goal is "optimizing water
distribution to the farms".  Model:

* a :class:`Reservoir` with finite stock and inflow;
* :class:`Canal` edges with capacity (m³/day) and fractional seepage loss;
* :class:`FarmOfftake` leaves with daily demands;
* :class:`DistributionNetwork.allocate` — one allocation round: checks
  feasibility against canal capacities and reservoir stock, then fills
  demands by priority with proportional rationing inside a priority class
  when supply is short.

The allocation is deliberately a clean, testable algorithm: the DoS
experiment (E4) attacks the *telemetry feeding the demands*, and the
distribution result degrades because demands default conservatively when
data is missing.
"""

from typing import Dict, List, Optional


class Reservoir:
    def __init__(self, name: str, capacity_m3: float, initial_m3: Optional[float] = None) -> None:
        if capacity_m3 <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity_m3 = capacity_m3
        self.stock_m3 = capacity_m3 if initial_m3 is None else min(initial_m3, capacity_m3)

    def inflow(self, volume_m3: float) -> None:
        if volume_m3 < 0:
            raise ValueError("inflow must be non-negative")
        self.stock_m3 = min(self.capacity_m3, self.stock_m3 + volume_m3)

    def withdraw(self, volume_m3: float) -> float:
        """Withdraw up to ``volume_m3``; returns the amount actually taken."""
        taken = min(self.stock_m3, max(0.0, volume_m3))
        self.stock_m3 -= taken
        return taken


class Canal:
    """A directed canal segment."""

    def __init__(
        self, name: str, parent: Optional[str], capacity_m3_day: float, loss_fraction: float = 0.05
    ) -> None:
        if capacity_m3_day <= 0:
            raise ValueError("canal capacity must be positive")
        if not 0.0 <= loss_fraction < 1.0:
            raise ValueError("loss fraction must be in [0, 1)")
        self.name = name
        self.parent = parent  # None = fed directly by the reservoir
        self.capacity_m3_day = capacity_m3_day
        self.loss_fraction = loss_fraction
        self.delivered_today_m3 = 0.0


class FarmOfftake:
    def __init__(self, name: str, canal: str, priority: int = 1) -> None:
        self.name = name
        self.canal = canal
        self.priority = priority  # lower number = served first
        self.requested_m3 = 0.0
        self.allocated_m3 = 0.0
        self.cum_requested_m3 = 0.0
        self.cum_allocated_m3 = 0.0

    @property
    def satisfaction(self) -> float:
        if self.cum_requested_m3 <= 0:
            return 1.0
        return self.cum_allocated_m3 / self.cum_requested_m3


class DistributionNetwork:
    def __init__(self, reservoir: Reservoir) -> None:
        self.reservoir = reservoir
        self.canals: Dict[str, Canal] = {}
        self.farms: Dict[str, FarmOfftake] = {}
        self.total_losses_m3 = 0.0
        self.total_delivered_m3 = 0.0

    def add_canal(self, canal: Canal) -> Canal:
        if canal.parent is not None and canal.parent not in self.canals:
            raise KeyError(f"parent canal {canal.parent!r} unknown")
        self.canals[canal.name] = canal
        return canal

    def add_farm(self, farm: FarmOfftake) -> FarmOfftake:
        if farm.canal not in self.canals:
            raise KeyError(f"canal {farm.canal!r} unknown")
        self.farms[farm.name] = farm
        return farm

    def set_demand(self, farm_name: str, volume_m3: float) -> None:
        if volume_m3 < 0:
            raise ValueError("demand must be non-negative")
        self.farms[farm_name].requested_m3 = volume_m3

    def _canal_path(self, canal_name: str) -> List[Canal]:
        """Path from the reservoir down to ``canal_name`` (inclusive)."""
        path: List[Canal] = []
        current: Optional[str] = canal_name
        while current is not None:
            canal = self.canals[current]
            path.append(canal)
            current = canal.parent
        path.reverse()
        return path

    def _gross_needed(self, canal_name: str, net_m3: float) -> float:
        """Volume to withdraw so ``net_m3`` arrives past seepage losses."""
        gross = net_m3
        for canal in reversed(self._canal_path(canal_name)):
            gross = gross / (1.0 - canal.loss_fraction)
        return gross

    def _path_headroom(self, canal_name: str) -> float:
        """Max additional *net* delivery the path can still carry today."""
        headroom = float("inf")
        net_factor = 1.0
        for canal in self._canal_path(canal_name):
            net_factor *= 1.0 - canal.loss_fraction
            remaining_gross = canal.capacity_m3_day - canal.delivered_today_m3
            # Net water that this segment's remaining capacity can yield
            # after downstream losses (approximation: compute at the end).
            headroom = min(headroom, max(0.0, remaining_gross))
        # Convert conservative gross headroom into net.
        return headroom * net_factor

    def allocate(self) -> Dict[str, float]:
        """One daily allocation round.

        Serves farms in ascending priority; within a priority class, if the
        reservoir or canal capacity cannot cover all requests, every farm
        in the class receives the same fraction of its request
        (proportional rationing).  Returns farm -> allocated m³ and resets
        daily canal counters afterwards.
        """
        for canal in self.canals.values():
            canal.delivered_today_m3 = 0.0
        allocations: Dict[str, float] = {farm: 0.0 for farm in self.farms}

        by_priority: Dict[int, List[FarmOfftake]] = {}
        for farm in self.farms.values():
            by_priority.setdefault(farm.priority, []).append(farm)

        for priority in sorted(by_priority):
            group = sorted(by_priority[priority], key=lambda f: f.name)
            requests = {f.name: f.requested_m3 for f in group}
            total_request = sum(requests.values())
            if total_request <= 0:
                continue
            # Feasible fraction from the reservoir side (gross).
            gross_needed = sum(
                self._gross_needed(f.canal, requests[f.name]) for f in group
            )
            fraction = 1.0
            if gross_needed > self.reservoir.stock_m3:
                fraction = self.reservoir.stock_m3 / gross_needed if gross_needed > 0 else 0.0
            for farm in group:
                target_net = requests[farm.name] * fraction
                capped_net = min(target_net, self._path_headroom(farm.canal))
                gross = self._gross_needed(farm.canal, capped_net)
                taken = self.reservoir.withdraw(gross)
                if taken < gross:  # rounding-level shortfall
                    capped_net = capped_net * (taken / gross if gross > 0 else 0.0)
                delivered = capped_net
                loss = taken - delivered
                self.total_losses_m3 += max(0.0, loss)
                self.total_delivered_m3 += delivered
                for canal in self._canal_path(farm.canal):
                    canal.delivered_today_m3 += taken  # gross through every segment
                allocations[farm.name] = delivered
                farm.allocated_m3 = delivered
                farm.cum_requested_m3 += farm.requested_m3
                farm.cum_allocated_m3 += delivered
                farm.requested_m3 = 0.0
        return allocations

    def efficiency(self) -> float:
        """Delivered / (delivered + losses) over the run so far."""
        total = self.total_delivered_m3 + self.total_losses_m3
        return self.total_delivered_m3 / total if total > 0 else 1.0
