"""Water-source mix optimization (the Intercrop pilot).

Intercrop Iberica farms a dry area where "a considerable amount of water
comes from a desalination plant"; the pilot's goal is "using water more
rationally".  Model each available source with a marginal cost (€/m³), an
energy intensity (kWh/m³) and a daily capacity; the optimizer fills the
day's demand greedily from cheapest to most expensive — optimal for this
linear cost structure — and reports cost/energy, so experiments can show
how much money the smart scheduler's demand reduction saves when the
marginal source is desalinated water.
"""

from typing import Dict, List, Optional


class WaterSource:
    def __init__(
        self,
        name: str,
        capacity_m3_day: float,
        cost_eur_m3: float,
        energy_kwh_m3: float,
        daily_renewable: bool = True,
    ) -> None:
        if capacity_m3_day <= 0:
            raise ValueError("capacity must be positive")
        if cost_eur_m3 < 0 or energy_kwh_m3 < 0:
            raise ValueError("cost and energy must be non-negative")
        self.name = name
        self.capacity_m3_day = capacity_m3_day
        self.cost_eur_m3 = cost_eur_m3
        self.energy_kwh_m3 = energy_kwh_m3
        self.daily_renewable = daily_renewable
        self.remaining_today_m3 = capacity_m3_day
        self.cum_supplied_m3 = 0.0

    def reset_day(self) -> None:
        if self.daily_renewable:
            self.remaining_today_m3 = self.capacity_m3_day

    def draw(self, volume_m3: float) -> float:
        taken = min(self.remaining_today_m3, max(0.0, volume_m3))
        self.remaining_today_m3 -= taken
        self.cum_supplied_m3 += taken
        return taken


class DesalinationPlant(WaterSource):
    """Convenience subclass with representative SWRO economics."""

    def __init__(self, name: str = "desalination", capacity_m3_day: float = 2000.0) -> None:
        super().__init__(
            name,
            capacity_m3_day,
            cost_eur_m3=0.65,
            energy_kwh_m3=3.8,
        )


class AllocationResult:
    __slots__ = ("supplied_m3", "shortfall_m3", "cost_eur", "energy_kwh", "by_source")

    def __init__(
        self,
        supplied_m3: float,
        shortfall_m3: float,
        cost_eur: float,
        energy_kwh: float,
        by_source: Dict[str, float],
    ) -> None:
        self.supplied_m3 = supplied_m3
        self.shortfall_m3 = shortfall_m3
        self.cost_eur = cost_eur
        self.energy_kwh = energy_kwh
        self.by_source = by_source


class SourceMixOptimizer:
    def __init__(self, sources: List[WaterSource]) -> None:
        if not sources:
            raise ValueError("need at least one source")
        self.sources = list(sources)
        self.cum_cost_eur = 0.0
        self.cum_energy_kwh = 0.0
        self.cum_shortfall_m3 = 0.0

    def allocate_day(self, demand_m3: float) -> AllocationResult:
        """Meet today's demand at minimum cost (greedy = optimal here)."""
        if demand_m3 < 0:
            raise ValueError("demand must be non-negative")
        for source in self.sources:
            source.reset_day()
        remaining = demand_m3
        cost = 0.0
        energy = 0.0
        by_source: Dict[str, float] = {}
        for source in sorted(self.sources, key=lambda s: (s.cost_eur_m3, s.name)):
            if remaining <= 0:
                break
            taken = source.draw(remaining)
            if taken > 0:
                by_source[source.name] = taken
                cost += taken * source.cost_eur_m3
                energy += taken * source.energy_kwh_m3
                remaining -= taken
        self.cum_cost_eur += cost
        self.cum_energy_kwh += energy
        self.cum_shortfall_m3 += remaining
        return AllocationResult(demand_m3 - remaining, remaining, cost, energy, by_source)
