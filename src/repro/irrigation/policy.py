"""Pure irrigation decision logic.

Kept free of platform dependencies so the same policy drives both the
platform-integrated scheduler (commands over MQTT) and the tight-loop
benchmark harness.  All quantities are in mm of water depth.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class IrrigationDecision:
    """What to do for one zone today."""

    depth_mm: float
    reason: str

    @property
    def irrigate(self) -> bool:
        return self.depth_mm > 0.0


class SoilMoisturePolicy:
    """Sensor-feedback deficit irrigation (the SWAMP smart policy).

    Irrigate when root-zone depletion exceeds ``trigger_fraction`` of
    readily available water; refill to ``refill_fraction`` of the deficit
    (slightly under field capacity leaves room for rain).  Skip when the
    rain forecast covers the deficit.
    """

    def __init__(
        self,
        trigger_fraction: float = 0.9,
        refill_fraction: float = 0.9,
        forecast_discount: float = 0.75,
        min_application_mm: float = 2.0,
        max_application_mm: float = 30.0,
    ) -> None:
        if not 0.0 < trigger_fraction <= 1.5:
            raise ValueError("trigger_fraction out of range")
        if not 0.0 < refill_fraction <= 1.0:
            raise ValueError("refill_fraction out of range")
        self.trigger_fraction = trigger_fraction
        self.refill_fraction = refill_fraction
        self.forecast_discount = forecast_discount
        self.min_application_mm = min_application_mm
        self.max_application_mm = max_application_mm

    def decide(
        self,
        depletion_mm: float,
        raw_mm: float,
        forecast_rain_mm: float = 0.0,
    ) -> IrrigationDecision:
        if raw_mm <= 0:
            return IrrigationDecision(0.0, "no-capacity")
        trigger_level = self.trigger_fraction * raw_mm
        if depletion_mm < trigger_level:
            return IrrigationDecision(0.0, "moist-enough")
        effective_rain = forecast_rain_mm * self.forecast_discount
        net_deficit = depletion_mm * self.refill_fraction - effective_rain
        if net_deficit < self.min_application_mm:
            return IrrigationDecision(0.0, "rain-expected")
        depth = min(net_deficit, self.max_application_mm)
        return IrrigationDecision(depth, "deficit-refill")


class DeficitPolicy(SoilMoisturePolicy):
    """Regulated deficit irrigation (the Guaspari wine-quality strategy).

    Refills only to ``deficit_target`` of RAW during configured stages —
    controlled stress concentrates berry flavour.  Callers pass
    ``stage_name``; stages not listed get the full-refill behaviour.
    """

    def __init__(self, deficit_stages=("veraison", "ripening"), deficit_target: float = 0.6, **kwargs):
        super().__init__(**kwargs)
        self.deficit_stages = set(deficit_stages)
        self.deficit_target = deficit_target

    def decide_staged(
        self,
        stage_name: str,
        depletion_mm: float,
        raw_mm: float,
        forecast_rain_mm: float = 0.0,
    ) -> IrrigationDecision:
        decision = self.decide(depletion_mm, raw_mm, forecast_rain_mm)
        if stage_name in self.deficit_stages and decision.irrigate:
            return IrrigationDecision(decision.depth_mm * self.deficit_target, "deficit-regulated")
        return decision
