"""Irrigation intelligence: the "smart algorithms" of the SWAMP platform.

* :mod:`~repro.irrigation.policy` — pure decision functions (soil-moisture
  feedback with rain-forecast skip, deficit targets);
* :mod:`~repro.irrigation.baselines` — the practices the paper's intro
  criticises: fixed-calendar over-irrigation, and rain-blind scheduling;
* :mod:`~repro.irrigation.vri` — Variable Rate Irrigation prescription maps
  for center pivots (the MATOPIBA pilot's goal);
* :mod:`~repro.irrigation.scheduler` — the platform-integrated controller:
  reads zone state from the context broker, decides, and actuates through
  the IoT agent;
* :mod:`~repro.irrigation.distribution` — canal water-distribution
  allocation (the CBEC pilot's goal);
* :mod:`~repro.irrigation.sources` — source-mix optimization with a
  desalination plant (the Intercrop pilot's constraint).
"""

from repro.irrigation.baselines import FixedCalendarPolicy
from repro.irrigation.distribution import Canal, DistributionNetwork, FarmOfftake, Reservoir
from repro.irrigation.policy import IrrigationDecision, SoilMoisturePolicy
from repro.irrigation.scheduler import PlatformScheduler
from repro.irrigation.sources import DesalinationPlant, SourceMixOptimizer, WaterSource
from repro.irrigation.vri import build_prescription, uniform_prescription

__all__ = [
    "Canal",
    "DesalinationPlant",
    "DistributionNetwork",
    "FarmOfftake",
    "FixedCalendarPolicy",
    "IrrigationDecision",
    "PlatformScheduler",
    "Reservoir",
    "SoilMoisturePolicy",
    "SourceMixOptimizer",
    "WaterSource",
    "build_prescription",
    "uniform_prescription",
]
