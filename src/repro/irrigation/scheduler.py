"""Platform-integrated irrigation scheduler.

This is the component the whole pipeline exists to feed: it reads zone
state *from the context broker* (i.e. from sensed data, not ground truth),
runs the decision policy, and actuates through the IoT agent.  Sensor
tampering (E5) therefore corrupts its view exactly as it would in the real
platform, and a DoS that delays telemetry (E4) delays or starves its
decisions.

The scheduler wakes on a fixed cadence (default daily at 06:00 farm time).
For valve-per-zone farms it opens valves; for pivot farms it builds a VRI
prescription and starts a pass.
"""

from typing import Callable, Dict, List, Optional

from repro.agents.iot_agent import IoTAgent
from repro.context.broker import ContextBroker
from repro.irrigation.policy import IrrigationDecision, SoilMoisturePolicy
from repro.simkernel.clock import DAY, HOUR
from repro.simkernel.simulator import Simulator


class SchedulerStats:
    __slots__ = ("cycles", "decisions", "commands_sent", "skipped_no_data", "skipped_stale")

    def __init__(self) -> None:
        self.cycles = 0
        self.decisions = 0
        self.commands_sent = 0
        self.skipped_no_data = 0
        self.skipped_stale = 0


class PlatformScheduler:
    """Daily decision loop over context-broker state.

    ``zone_bindings`` maps a zone entity id to the actuator that serves it:
    ``{"entity_id": ..., "device_id": ..., "taw_mm": ..., "raw_mm": ...}``.
    For pivots, use :meth:`bind_pivot` instead and per-zone entities are
    read for the prescription.
    """

    def __init__(
        self,
        sim: Simulator,
        context: ContextBroker,
        agent: IoTAgent,
        policy: Optional[SoilMoisturePolicy] = None,
        cycle_interval_s: float = DAY,
        first_cycle_at_s: float = 6 * HOUR,
        max_data_age_s: float = 6 * HOUR,
        forecast_provider: Optional[Callable[[], float]] = None,
        valve_rate_mm_h: float = 8.0,
        supply_gate: Optional[Callable[[float], float]] = None,
        uniform_pivot: bool = False,
    ) -> None:
        self.sim = sim
        self.context = context
        self.agent = agent
        self.policy = policy or SoilMoisturePolicy()
        self.cycle_interval_s = cycle_interval_s
        self.first_cycle_at_s = first_cycle_at_s
        self.max_data_age_s = max_data_age_s
        self.forecast_provider = forecast_provider
        self.valve_rate_mm_h = valve_rate_mm_h
        # Water-source constraint: given the cycle's total requested volume
        # (m³), returns the grantable fraction in [0, 1].  CBEC's canal
        # allocation and Intercrop's source mix plug in here.
        self.supply_gate = supply_gate
        # Uniform-rate mode: the pivot applies the *max* per-zone need
        # everywhere (worst-case sizing, what a risk-averse operator does
        # without VRI) — the comparison arm of experiments E1/E2.
        self.uniform_pivot = uniform_pivot
        self.stats = SchedulerStats()
        self._valve_bindings: List[dict] = []
        self._pivot_bindings: List[dict] = []
        self.decision_log: List[dict] = []
        # Called with every decision-log entry as it is appended; the
        # resilience layer journals degraded-mode decisions through this.
        self.on_decision: List[Callable[[dict], None]] = []
        # Optional supervisor heartbeat, called once per cycle.
        self.heartbeat: Optional[Callable[[], None]] = None
        # Trace context of the last context attribute read (see
        # _sensed_depletion); None when tracing is off or data missing.
        self._last_reading_ctx = None
        self._process = None
        registry = sim.metrics
        self._m_cycles = registry.counter("scheduler.cycles")
        self._m_decisions = registry.counter("scheduler.decisions")
        self._m_commands = registry.counter("scheduler.commands_sent")
        self._m_skipped_no_data = registry.counter("scheduler.skipped_no_data")
        self._m_skipped_stale = registry.counter("scheduler.skipped_stale")
        # Actuation volume actually commanded (post supply-gate scaling).
        self._m_requested_mm = registry.counter("scheduler.actuation_depth_mm")
        self._m_requested_m3 = registry.counter("scheduler.actuation_volume_m3")

    # -- wiring -----------------------------------------------------------

    def bind_valve(
        self,
        zone_entity_id: str,
        valve_device_id: str,
        theta_fc: float,
        theta_wp: float,
        root_depth_m: float,
        depletion_fraction_p: float = 0.5,
        area_ha: float = 1.0,
    ) -> None:
        self._valve_bindings.append(
            {
                "entity_id": zone_entity_id,
                "device_id": valve_device_id,
                "theta_fc": theta_fc,
                "theta_wp": theta_wp,
                "root_depth_m": root_depth_m,
                "p": depletion_fraction_p,
                "area_ha": area_ha,
            }
        )

    def bind_pivot(
        self,
        pivot_device_id: str,
        zone_entities: List[dict],
    ) -> None:
        """``zone_entities``: list of dicts like bind_valve's zones plus
        ``zone_id`` (the pivot's prescription key)."""
        self._pivot_bindings.append({"device_id": pivot_device_id, "zones": zone_entities})

    def start(self) -> None:
        self._process = self.sim.spawn(self._loop(), "scheduler")

    # -- loop -----------------------------------------------------------

    def _loop(self):
        yield self.first_cycle_at_s
        while True:
            self.run_cycle()
            yield self.cycle_interval_s

    def run_cycle(self) -> None:
        self.stats.cycles += 1
        self._m_cycles.inc()
        if self.heartbeat is not None:
            self.heartbeat()
        # Each cycle is its own trace root; per-zone decision spans hang
        # from it and *link* to the sensor-reading traces whose context
        # attributes fed the decision (cross-trace causality).
        with self.sim.tracer.span(
            "scheduler.cycle", "scheduler", root=True, cycle=self.stats.cycles
        ):
            forecast = self.forecast_provider() if self.forecast_provider else 0.0
            valve_plans = [
                plan for plan in
                (self._plan_valve(binding, forecast) for binding in self._valve_bindings)
                if plan is not None
            ]
            pivot_plans = [
                plan for plan in
                (self._plan_pivot(binding, forecast) for binding in self._pivot_bindings)
                if plan is not None
            ]
            fraction = self._granted_fraction(valve_plans, pivot_plans)
            for binding, depth, span in valve_plans:
                self._send_valve(binding, depth * fraction, span)
            for binding, prescription, span in pivot_plans:
                if fraction < 1.0:
                    prescription = {k: v * fraction for k, v in prescription.items()}
                self._send_pivot(binding, prescription, span)

    def _granted_fraction(self, valve_plans, pivot_plans) -> float:
        if self.supply_gate is None:
            return 1.0
        total_m3 = sum(
            depth * binding["area_ha"] * 10.0 for binding, depth, _span in valve_plans
        )
        for binding, prescription, _span in pivot_plans:
            areas = {z["zone_id"]: z.get("area_ha", 1.0) for z in binding["zones"]}
            total_m3 += sum(
                depth * areas.get(zone_id, 1.0) * 10.0
                for zone_id, depth in prescription.items()
            )
        if total_m3 <= 0:
            return 1.0
        return max(0.0, min(1.0, self.supply_gate(total_m3)))

    # -- sensed-state helpers -----------------------------------------------------

    def _sensed_depletion(self, binding: dict) -> Optional[float]:
        """Depletion (mm) from the context broker's view, or None if the
        data is missing/stale.

        Side channel for tracing: ``_last_reading_ctx`` holds the trace
        context the context broker stamped on the attribute it read —
        the link from "this decision" back to "that sensor reading".
        """
        self._last_reading_ctx = None
        try:
            entity = self.context.get_entity(binding["entity_id"])
        except Exception:
            self.stats.skipped_no_data += 1
            self._m_skipped_no_data.inc()
            return None
        attribute = entity.attribute("soilMoisture")
        if attribute is None or not isinstance(attribute.value, (int, float)):
            self.stats.skipped_no_data += 1
            self._m_skipped_no_data.inc()
            return None
        if self.sim.now - attribute.timestamp > self.max_data_age_s:
            self.stats.skipped_stale += 1
            self._m_skipped_stale.inc()
            return None
        self._last_reading_ctx = attribute.trace_ctx
        theta = float(attribute.value)
        depletion = max(0.0, (binding["theta_fc"] - theta) * binding["root_depth_m"] * 1000.0)
        return depletion

    def _raw_mm(self, binding: dict) -> float:
        taw = (binding["theta_fc"] - binding["theta_wp"]) * binding["root_depth_m"] * 1000.0
        return binding["p"] * taw

    # -- actuation -----------------------------------------------------------

    def _plan_valve(self, binding: dict, forecast: float):
        """Decide one valve zone; returns (binding, depth, span) or None."""
        tracer = self.sim.tracer
        depletion = self._sensed_depletion(binding)
        if depletion is None:
            return None
        decision = self.policy.decide(depletion, self._raw_mm(binding), forecast)
        span = tracer.start_span(
            "scheduler.decision", "scheduler", entity=binding["entity_id"],
            irrigate=decision.irrigate, reason=decision.reason,
        )
        if span is not None:
            span.add_link(self._last_reading_ctx)
        self.stats.decisions += 1
        self._m_decisions.inc()
        entry = {
            "t": self.sim.now,
            "entity": binding["entity_id"],
            "depth_mm": decision.depth_mm,
            "reason": decision.reason,
        }
        self.decision_log.append(entry)
        for hook in self.on_decision:
            hook(entry)
        if not decision.irrigate:
            tracer.end_span(span)
            return None
        # The open span rides to the send phase so the actuator command
        # nests under the decision that caused it.
        return (binding, decision.depth_mm, span)

    def _send_valve(self, binding: dict, depth_mm: float, span=None) -> None:
        tracer = self.sim.tracer
        try:
            if depth_mm <= 0:
                return
            with tracer.activate(span):
                sent = self.agent.send_command(
                    binding["device_id"], {"cmd": "open", "depth_mm": round(depth_mm, 2)}
                )
            if sent:
                self.stats.commands_sent += 1
                self._m_commands.inc()
                self._m_requested_mm.inc(depth_mm)
                self._m_requested_m3.inc(depth_mm * binding.get("area_ha", 1.0) * 10.0)
        finally:
            tracer.end_span(span)

    def _plan_pivot(self, binding: dict, forecast: float):
        """Decide one pivot's prescription; returns (binding, map, span) or None."""
        tracer = self.sim.tracer
        span = tracer.start_span(
            "scheduler.decision", "scheduler", pivot=binding["device_id"]
        )
        prescription: Dict[str, float] = {}
        any_data = False
        for zone_binding in binding["zones"]:
            depletion = self._sensed_depletion(zone_binding)
            if depletion is None:
                continue
            if span is not None:
                span.add_link(self._last_reading_ctx)
            any_data = True
            decision = self.policy.decide(depletion, self._raw_mm(zone_binding), forecast)
            self.stats.decisions += 1
            self._m_decisions.inc()
            if decision.irrigate:
                prescription[zone_binding["zone_id"]] = round(decision.depth_mm, 2)
        if not any_data:
            tracer.end_span(span)
            return None
        entry = {
            "t": self.sim.now, "pivot": binding["device_id"], "prescription": dict(prescription)
        }
        self.decision_log.append(entry)
        for hook in self.on_decision:
            hook(entry)
        if not prescription:
            tracer.end_span(span)
            return None
        if self.uniform_pivot:
            worst = max(prescription.values())
            prescription = {z["zone_id"]: worst for z in binding["zones"]}
        return (binding, prescription, span)

    def _send_pivot(self, binding: dict, prescription: Dict[str, float], span=None) -> None:
        tracer = self.sim.tracer
        try:
            prescription = {k: round(v, 2) for k, v in prescription.items() if v > 0}
            if not prescription:
                return
            with tracer.activate(span):
                sent = self.agent.send_command(
                    binding["device_id"], {"cmd": "start_pass", "prescription": prescription}
                )
            if sent:
                self.stats.commands_sent += 1
                self._m_commands.inc()
                areas = {z["zone_id"]: z.get("area_ha", 1.0) for z in binding["zones"]}
                for zone_id, depth in prescription.items():
                    self._m_requested_mm.inc(depth)
                    self._m_requested_m3.inc(depth * areas.get(zone_id, 1.0) * 10.0)
        finally:
            tracer.end_span(span)
