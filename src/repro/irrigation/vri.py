"""Variable Rate Irrigation prescription maps.

The MATOPIBA pilot's goal: per-sector depths for a center pivot, derived
from per-zone depletion, instead of one uniform depth.  The uniform
baseline must not under-irrigate anywhere, so it is sized by the *driest*
zone (that is what a risk-averse operator does), which is exactly why it
over-waters everywhere else on a variable field.
"""

from typing import Callable, Dict, Iterable, Optional

from repro.irrigation.policy import SoilMoisturePolicy
from repro.physics.field import FieldZone


def build_prescription(
    zones: Iterable[FieldZone],
    policy: Optional[SoilMoisturePolicy] = None,
    forecast_rain_mm: float = 0.0,
    depletion_reader: Optional[Callable[[FieldZone], float]] = None,
) -> Dict[str, float]:
    """Per-zone depths from each zone's own depletion.

    ``depletion_reader`` lets the platform path feed *sensed* depletion
    (possibly tampered — experiment E5) instead of ground truth.
    """
    policy = policy or SoilMoisturePolicy()
    prescription: Dict[str, float] = {}
    for zone in zones:
        depletion = (
            depletion_reader(zone)
            if depletion_reader is not None
            else zone.water_balance.depletion_mm
        )
        decision = policy.decide(
            depletion, zone.water_balance.readily_available_water_mm, forecast_rain_mm
        )
        prescription[zone.zone_id] = decision.depth_mm
    return prescription


def uniform_prescription(
    zones: Iterable[FieldZone],
    policy: Optional[SoilMoisturePolicy] = None,
    forecast_rain_mm: float = 0.0,
) -> Dict[str, float]:
    """One depth everywhere, sized by the neediest zone (worst-case sizing)."""
    policy = policy or SoilMoisturePolicy()
    zones = list(zones)
    worst = 0.0
    for zone in zones:
        decision = policy.decide(
            zone.water_balance.depletion_mm,
            zone.water_balance.readily_available_water_mm,
            forecast_rain_mm,
        )
        worst = max(worst, decision.depth_mm)
    return {zone.zone_id: worst for zone in zones}


def prescription_volume_m3(prescription: Dict[str, float], zones: Iterable[FieldZone]) -> float:
    """Total water a prescription applies (mm · ha → m³)."""
    by_id = {z.zone_id: z for z in zones}
    return sum(depth * by_id[zid].area_ha * 10.0 for zid, depth in prescription.items() if zid in by_id)
