"""Baseline irrigation practices.

The paper's introduction motivates SWAMP with the prevailing practice: "in
an attempt to avoid loss of productivity by under-irrigation, farmers feed
more water than is needed".  :class:`FixedCalendarPolicy` models exactly
that — irrigate every N days by a fixed depth sized for the worst-case hot
spell, rain or shine — and serves as the comparison arm of experiments E1
and E2.
"""

from repro.irrigation.policy import IrrigationDecision


class FixedCalendarPolicy:
    """Irrigate ``depth_mm`` every ``interval_days``, ignoring all sensing."""

    def __init__(self, interval_days: int = 3, depth_mm: float = 25.0) -> None:
        if interval_days < 1:
            raise ValueError("interval must be at least 1 day")
        if depth_mm <= 0:
            raise ValueError("depth must be positive")
        self.interval_days = interval_days
        self.depth_mm = depth_mm

    def decide(self, season_day: int) -> IrrigationDecision:
        if season_day % self.interval_days == 0:
            return IrrigationDecision(self.depth_mm, "calendar")
        return IrrigationDecision(0.0, "not-today")


class RainBlindEtPolicy:
    """Replace yesterday's ET every day, ignoring rain and soil state.

    A half-smart baseline: better than the calendar, still wasteful in wet
    spells.  Used in E1's middle column.
    """

    def __init__(self, kc_default: float = 1.0, max_application_mm: float = 30.0) -> None:
        self.kc_default = kc_default
        self.max_application_mm = max_application_mm

    def decide(self, et0_yesterday_mm: float, kc: float = None) -> IrrigationDecision:
        depth = min(et0_yesterday_mm * (kc if kc is not None else self.kc_default),
                    self.max_application_mm)
        if depth <= 0.5:
            return IrrigationDecision(0.0, "no-demand")
        return IrrigationDecision(depth, "et-replacement")
