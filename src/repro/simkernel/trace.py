"""Structured trace log for simulation runs.

Components emit trace records (``category``, ``message``, payload dict); the
experiments and tests query them afterwards.  The trace is bounded so a
multi-season run cannot exhaust memory: when full, the oldest records are
dropped and counters record how many were lost — in total *and per
category of the evicted record*, so a flood in one category that evicts
another's history is attributable after the run.

An optional deterministic sampler (see
:func:`repro.telemetry.tracing.log_sampler`) thins records *before*
storage: sampled-out records still count toward the per-category totals
(``count()`` stays exact) but are neither stored nor delivered to
listeners.
"""

from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


class TraceRecord:
    """One trace entry."""

    __slots__ = ("time", "category", "message", "data")

    def __init__(self, time: float, category: str, message: str, data: Dict[str, Any]) -> None:
        self.time = time
        self.category = category
        self.message = message
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecord(t={self.time:.3f}, {self.category}: {self.message})"


class TraceLog:
    """Append-only bounded log with per-category counters and filters."""

    def __init__(self, max_records: int = 200_000) -> None:
        self.max_records = max_records
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        self.dropped = 0
        self.dropped_by_category: Counter = Counter()
        self.sampled_out: Counter = Counter()
        self.counts: Counter = Counter()
        # Optional (category, sequence) -> bool admission decision.
        self.sampler: Optional[Callable[[str, int], bool]] = None
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def set_sampler(self, sampler: Optional[Callable[[str, int], bool]]) -> None:
        """Install a deterministic per-record admission sampler."""
        self.sampler = sampler

    def emit(self, time: float, category: str, message: str, **data: Any) -> TraceRecord:
        record = TraceRecord(time, category, message, data)
        self.counts[category] += 1
        if self.sampler is not None and not self.sampler(category, self.counts[category]):
            self.sampled_out[category] += 1
            return record
        if self.max_records == 0:
            # Storage disabled entirely: every record is a drop of itself.
            self.dropped += 1
            self.dropped_by_category[category] += 1
        elif len(self._records) == self.max_records:
            # The deque evicts its *oldest* entry on append; attribute the
            # drop to the evicted record's category, not the incoming one.
            evicted = self._records[0]
            self.dropped += 1
            self.dropped_by_category[evicted.category] += 1
        self._records.append(record)
        for listener in self._listeners:
            listener(record)
        return record

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously on every record."""
        self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        category: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceRecord]:
        """Records matching the filter, in emission order."""
        return [
            r
            for r in self._records
            if (category is None or r.category == category) and since <= r.time <= until
        ]

    def count(self, category: str) -> int:
        """Total records ever emitted in ``category`` (survives eviction)."""
        return self.counts[category]

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serializable log state: stored records plus all counters.

        The sampler and listeners are callables and deliberately *not*
        captured — they are wiring, rebuilt by whoever owns the log (the
        factory-replay contract in ``repro.core.checkpoint``).
        """
        return {
            "max_records": self.max_records,
            "records": [
                (r.time, r.category, r.message, r.data) for r in self._records
            ],
            "dropped": self.dropped,
            "dropped_by_category": dict(self.dropped_by_category),
            "sampled_out": dict(self.sampled_out),
            "counts": dict(self.counts),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild records and counters from :meth:`snapshot` output."""
        self.max_records = state["max_records"]
        self._records = deque(
            (TraceRecord(*fields) for fields in state["records"]),
            maxlen=self.max_records,
        )
        self.dropped = state["dropped"]
        self.dropped_by_category = Counter(state["dropped_by_category"])
        self.sampled_out = Counter(state["sampled_out"])
        self.counts = Counter(state["counts"])
