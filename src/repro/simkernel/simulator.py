"""The discrete-event simulator that drives a SWAMP run."""

import heapq
import time
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.simkernel.clock import SimClock
from repro.simkernel.errors import (
    ScheduleInPastError,
    SimulationError,
    SnapshotError,
    StopSimulation,
)
from repro.simkernel.events import PRIORITY_NORMAL, Event, EventQueue
from repro.simkernel.process import Process, Signal
from repro.simkernel.rng import RngRegistry
from repro.simkernel.snapshot import SNAPSHOT_VERSION, KernelSnapshot, check_version
from repro.simkernel.trace import TraceLog
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.tracing import NULL_TRACER, Tracer


class Simulator:
    """Owns the clock, event queue, RNG registry and trace log for one run.

    A run is deterministic given ``seed``: the kernel never consults wall
    time, thread identity or hash randomization for ordering decisions.
    (Wall time is *read* only for throughput metrics; it never influences
    event ordering or simulation state.)

    The simulator also carries the run's :class:`MetricsRegistry` so every
    subsystem built on top of it reaches the same registry through
    ``sim.metrics``.  The kernel's own instrumentation is snapshot-lazy
    (callback gauges), so the event loop pays nothing for it.
    """

    def __init__(
        self,
        seed: int = 0,
        trace_capacity: int = 200_000,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.trace = TraceLog(max_records=trace_capacity)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(self.clock)
        self.profiler = profiler
        self.processes: List[Process] = []
        self._running = False
        self._stop_reason: Optional[str] = None
        self.events_executed = 0
        self.wall_time_s = 0.0
        self.fail_fast = True
        self._shutdown_hooks: List[Callable[[], None]] = []
        self._process_factories: Dict[str, Callable[[], Generator]] = {}
        self.metrics.register_callback(
            "simkernel.events_executed", lambda: float(self.events_executed)
        )
        self.metrics.register_callback(
            "simkernel.queue_depth", lambda: float(len(self.queue))
        )
        self.metrics.register_callback("simkernel.events_per_sec", self.events_per_sec)
        self.metrics.register_callback("simkernel.sim_time_s", lambda: self.clock.now)
        self.metrics.register_callback("simkernel.wall_time_s", lambda: self.wall_time_s)

    # -- scheduling -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r} for {label or callback!r}")
        # Inlined EventQueue.push (the canonical implementation): this is
        # the hottest scheduling entry point — several per simulated packet
        # — and the extra call frame was measurable at season scale.
        queue = self.queue
        at = self.clock.now + delay
        seq = queue._seq_next
        event = Event(at, priority, seq, callback, args, label)
        event._queue = queue
        queue._seq_next = seq + 1
        heapq.heappush(queue._heap, (at, priority, seq, event))
        queue._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self.clock.now:
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}, now is {self.clock.now!r} ({label})"
            )
        return self.queue.push(time, callback, args, priority, label)

    def spawn(self, generator: Generator, name: str = "proc") -> Process:
        """Start a generator-based process immediately."""
        process = Process(self, generator, name)
        self.processes.append(process)
        process.start()
        return process

    def signal(self, name: str = "") -> Signal:
        return Signal(name)

    # -- process factories --------------------------------------------------------

    def register_process_factory(
        self, name: str, factory: Callable[[], Generator]
    ) -> None:
        """Declare how to (re)create the named process's generator.

        Factories are the restore contract for generator-based processes:
        a live generator cannot be pickled, so a checkpoint restore
        rebuilds the kernel by calling the registered factories again and
        replaying deterministically (see ``repro.core.checkpoint``).
        Registration is pure bookkeeping — it schedules nothing.
        """
        self._process_factories[name] = factory

    def spawn_registered(self, name: str) -> Process:
        """Spawn (or respawn) the process registered under ``name``."""
        factory = self._process_factories.get(name)
        if factory is None:
            raise SimulationError(f"no process factory registered for {name!r}")
        return self.spawn(factory(), name)

    def process_factory_names(self) -> List[str]:
        return sorted(self._process_factories)

    def add_shutdown_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` once when the run ends (normally or via stop())."""
        self._shutdown_hooks.append(hook)

    # -- run loop ---------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events until the queue drains, ``until`` is reached, or stop().

        Returns the final simulation time.  ``until`` is inclusive: events at
        exactly ``until`` still execute, and the clock lands on ``until`` even
        if the queue drains earlier (so back-to-back ``run`` calls compose).

        Shutdown hooks fire automatically when the run *ends* — queue drain,
        ``until`` reached, :class:`StopSimulation`/:meth:`stop`, or an
        exception escaping an event callback.  A ``max_events`` break is a
        pause, not an end, so hooks are withheld there.  :meth:`finish` stays
        idempotent, so hooks registered before the first of several
        back-to-back ``run`` calls fire exactly once.
        """
        return self._execute(until, max_events, barrier=False)

    def run_until(self, t: float, max_events: Optional[int] = None) -> float:
        """Advance to the barrier ``t`` without ending the run.

        Segmented execution: events at or before ``t`` execute exactly as
        they would inside a single longer :meth:`run` call, the clock
        lands on ``t``, and shutdown hooks are *withheld* — reaching a
        barrier is a pause (snapshot point), not an end.  The run ends —
        and hooks fire — when a later plain :meth:`run` finishes, or at a
        :meth:`stop`/:class:`StopSimulation` or escaping exception inside
        any segment.  A sequence of ``run_until`` segments followed by
        ``run`` is bit-identical to one uninterrupted ``run``, and
        ``wall_time_s``/``events_executed`` accumulate across segments.
        """
        return self._execute(t, max_events, barrier=True)

    def _execute(
        self, until: Optional[float], max_events: Optional[int], barrier: bool
    ) -> float:
        if self._running:
            raise SimulationError("run() re-entered; the simulator is not reentrant")
        self._running = True
        executed_this_call = 0
        invoke_hooks = True
        completed = False
        # Hot loop: hoist attribute lookups that cannot change mid-run and
        # keep the executed counter in a local (flushed in the finally so
        # accounting survives an escaping exception).  The pop itself is
        # inlined from EventQueue.pop_due — one method call per event was
        # a measurable slice of season runs — with the heap list re-read
        # each iteration so a callback that restores the kernel mid-run
        # cannot leave the loop iterating a stale heap.
        queue = self.queue
        clock = self.clock
        profiler = self.profiler
        perf_counter = time.perf_counter
        heappop = heapq.heappop
        limit = float("inf") if max_events is None else max_events
        wall_started = perf_counter()
        try:
            if profiler is None:
                while True:
                    heap = queue._heap
                    if not heap:
                        break
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    t = entry[0]
                    if until is not None and t > until:
                        break
                    heappop(heap)
                    queue._live -= 1
                    event._queue = None
                    clock.advance_to(t)
                    try:
                        event.callback(*event.args)
                    except StopSimulation as stop:
                        self._stop_reason = stop.reason
                        self.trace.emit(
                            self.now, "kernel", "simulation stopped", reason=stop.reason
                        )
                    # The event ran (fully or up to its StopSimulation), so
                    # it counts toward throughput and max_events either way.
                    executed_this_call += 1
                    if self._stop_reason is not None:
                        break
                    if executed_this_call >= limit:
                        invoke_hooks = False
                        break
            else:
                while True:
                    heap = queue._heap
                    if not heap:
                        break
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    t = entry[0]
                    if until is not None and t > until:
                        break
                    heappop(heap)
                    queue._live -= 1
                    event._queue = None
                    clock.advance_to(t)
                    _event_started = perf_counter()
                    try:
                        event.callback(*event.args)
                    except StopSimulation as stop:
                        self._stop_reason = stop.reason
                        self.trace.emit(
                            self.now, "kernel", "simulation stopped", reason=stop.reason
                        )
                    finally:
                        profiler.record(event, perf_counter() - _event_started)
                    executed_this_call += 1
                    if self._stop_reason is not None:
                        break
                    if executed_this_call >= limit:
                        invoke_hooks = False
                        break
            completed = True
        finally:
            self._running = False
            self.events_executed += executed_this_call
            self.wall_time_s += time.perf_counter() - wall_started
            if not completed:
                # An exception is escaping: the run is over; fire hooks so
                # resources (logs, exporters) still flush.
                self.finish()
        if self._stop_reason is None and until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        if barrier and self._stop_reason is None:
            # Reaching a barrier is a pause, not an end: withhold hooks so
            # the run can continue (or be snapshotted) from here.
            invoke_hooks = False
        if invoke_hooks:
            self.finish()
        return self.clock.now

    def stop(self, reason: str = "stopped") -> None:
        """Request the run loop to exit after the current event."""
        self._stop_reason = reason

    def finish(self) -> None:
        """Invoke shutdown hooks (idempotent: each hook runs once)."""
        hooks, self._shutdown_hooks = self._shutdown_hooks, []
        for hook in hooks:
            hook()

    @property
    def stopped_reason(self) -> Optional[str]:
        return self._stop_reason

    # -- failure policy -----------------------------------------------------------

    def on_process_failure(self, process: Process, exc: BaseException) -> None:
        """Called by a Process whose body raised.

        With ``fail_fast`` (the default) the exception propagates and aborts
        the run — silent partial failures would invalidate experiments.
        """
        self.trace.emit(
            self.now, "kernel", "process failed", process=process.name, error=repr(exc)
        )
        if self.fail_fast:
            raise exc

    # -- convenience -----------------------------------------------------------

    def events_per_sec(self) -> float:
        """Kernel throughput: events executed per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.events_executed / self.wall_time_s

    def stats(self) -> Dict[str, Any]:
        return {
            "now": self.clock.now,
            "events_executed": self.events_executed,
            "events_pending": len(self.queue),
            "processes": len(self.processes),
            "processes_alive": sum(1 for p in self.processes if p.alive),
            "trace_records": len(self.trace),
            "wall_time_s": self.wall_time_s,
            "events_per_sec": self.events_per_sec(),
        }

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(
        self, include_events: bool = True, include_trace: bool = True
    ) -> KernelSnapshot:
        """Capture the kernel's state as a versioned :class:`KernelSnapshot`.

        With ``include_events`` the snapshot carries the pending events and
        pickles only when their callbacks do; without it, the snapshot
        carries the queue :meth:`~repro.simkernel.events.EventQueue.signature`
        instead, for factory-replay restore (``repro.core.checkpoint``).
        """
        return KernelSnapshot(
            version=SNAPSHOT_VERSION,
            time=self.clock.now,
            events_executed=self.events_executed,
            wall_time_s=self.wall_time_s,
            stop_reason=self._stop_reason,
            queue=self.queue.snapshot() if include_events else None,
            queue_signature=self.queue.signature(),
            rng=self.rng.snapshot(),
            trace=self.trace.snapshot() if include_trace else None,
            trace_counts=dict(self.trace.counts),
        )

    def restore(self, snap: KernelSnapshot) -> None:
        """Restore clock, queue, RNG streams, trace and accounting.

        Requires a full snapshot (``include_events=True``); replay-restore
        snapshots carry no events and go through ``repro.core.checkpoint``
        instead.  Callbacks, processes, metrics wiring and trace listeners
        are code, not state — they stay exactly as this kernel has them.
        """
        check_version(snap.version)
        if self._running:
            raise SnapshotError("cannot restore while the simulator is running")
        if snap.queue is None:
            raise SnapshotError(
                "snapshot carries no events (taken with include_events=False); "
                "use repro.core.checkpoint factory replay to restore it"
            )
        self.clock.restore(snap.time)
        self.queue.restore(snap.queue)
        self.rng.restore(snap.rng)
        if snap.trace is not None:
            self.trace.restore(snap.trace)
        self.events_executed = snap.events_executed
        self.wall_time_s = snap.wall_time_s
        self._stop_reason = snap.stop_reason

    def fingerprint(self) -> Dict[str, Any]:
        """The live kernel's deterministic-state digest.

        Comparable against :meth:`KernelSnapshot.fingerprint` to verify a
        factory replay reconverged on the captured state.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "time": self.clock.now,
            "events_executed": self.events_executed,
            "queue_signature": self.queue.signature(),
            "rng": self.rng.snapshot()["streams"],
            "trace_counts": dict(self.trace.counts),
        }
