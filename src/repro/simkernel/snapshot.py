"""Versioned, picklable snapshots of the simulation kernel.

A :class:`KernelSnapshot` captures everything the kernel itself owns —
virtual clock, the event queue *including its tie-break sequence
counter*, every named RNG stream's ``random.Random.getstate`` tuple, the
trace log and the run accounting (``events_executed``, ``wall_time_s``).
What it deliberately does **not** capture is behaviour: callbacks,
generator-based processes, metrics lambdas and trace listeners are code,
not state, and generators cannot be pickled at all.  Two restore modes
follow from that split:

* **Full kernel restore** (``include_events=True``): the snapshot carries
  the pending events themselves.  This pickles only when every scheduled
  callback does (module-level functions, bound methods of picklable
  objects) — the mode kernel-level tests and in-process forking use.
* **Replay restore** (``include_events=False``): the snapshot carries a
  :meth:`fingerprint` of the schedule instead of the schedule.  A fresh
  kernel is rebuilt by re-running the registered service/process
  factories from time zero (deterministic, so it reconverges exactly),
  and the fingerprint proves it did — see :mod:`repro.core.checkpoint`.

``version`` gates compatibility: a snapshot written by a different
snapshot-format version refuses to restore rather than silently
misbehaving.  Bump :data:`SNAPSHOT_VERSION` whenever the captured shape
changes.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.simkernel.errors import SnapshotError

#: Format version stamped into every snapshot.  Restore refuses other
#: versions (see :func:`check_version`).
SNAPSHOT_VERSION = 1

#: The fingerprint keys every snapshot captures, whether or not it also
#: captured the full event/trace payloads.
_FINGERPRINT_KEYS = (
    "version",
    "time",
    "events_executed",
    "queue_signature",
    "rng",
    "trace_counts",
)


@dataclass
class KernelSnapshot:
    """One kernel's serializable state at a single simulation instant."""

    version: int
    time: float
    events_executed: int
    wall_time_s: float
    stop_reason: Optional[str]
    #: ``EventQueue.snapshot()`` output, or None for replay-restore
    #: snapshots (the queue is then rebuilt by factory replay).
    queue: Optional[Dict[str, Any]]
    #: ``EventQueue.signature()`` — always captured, the replay check.
    queue_signature: Tuple[Tuple[float, int, int, str], ...]
    #: ``RngRegistry.snapshot()`` output.
    rng: Dict[str, Any]
    #: ``TraceLog.snapshot()`` output, or None when records were skipped.
    trace: Optional[Dict[str, Any]]
    #: Per-category emission totals — cheap, always captured, and part of
    #: the fingerprint even when the records themselves are not.
    trace_counts: Dict[str, int] = field(default_factory=dict)

    def fingerprint(self) -> Dict[str, Any]:
        """The deterministic-state digest used to verify a replay."""
        return {
            "version": self.version,
            "time": self.time,
            "events_executed": self.events_executed,
            "queue_signature": self.queue_signature,
            "rng": self.rng["streams"],
            "trace_counts": dict(self.trace_counts),
        }


def check_version(version: int) -> None:
    """Raise :class:`SnapshotError` unless ``version`` is the current one."""
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot format version {version} is not supported "
            f"(this kernel writes version {SNAPSHOT_VERSION})"
        )


def compare_fingerprints(
    expected: Dict[str, Any], actual: Dict[str, Any]
) -> List[str]:
    """Describe every way two kernel fingerprints differ.

    Returns an empty list when they match.  Messages are written for the
    checkpoint-restore failure mode: the snapshot said the kernel should
    look like X at the barrier, the factory replay produced Y — usually
    meaning the code changed between snapshot and restore.
    """
    problems: List[str] = []
    for key in _FINGERPRINT_KEYS:
        if key not in expected or key not in actual:
            if (key in expected) != (key in actual):
                problems.append(f"fingerprint key {key!r} present on one side only")
            continue
        exp, act = expected[key], actual[key]
        if exp == act:
            continue
        if key == "queue_signature":
            problems.append(_describe_queue_divergence(exp, act))
        elif key == "rng":
            problems.append(_describe_rng_divergence(exp, act))
        elif key == "trace_counts":
            drifted = sorted(
                cat
                for cat in set(exp) | set(act)
                if exp.get(cat, 0) != act.get(cat, 0)
            )
            problems.append(f"trace counts differ for categories {drifted}")
        else:
            problems.append(f"{key} differs: expected {exp!r}, got {act!r}")
    return problems


def _describe_queue_divergence(expected: tuple, actual: tuple) -> str:
    if len(expected) != len(actual):
        return (
            f"pending event count differs: expected {len(expected)}, "
            f"got {len(actual)}"
        )
    for i, (exp, act) in enumerate(zip(expected, actual)):
        if exp != act:
            return f"pending event #{i} differs: expected {exp!r}, got {act!r}"
    return "queue signatures differ"


def _describe_rng_divergence(expected: dict, actual: dict) -> str:
    missing = sorted(set(expected) - set(actual))
    extra = sorted(set(actual) - set(expected))
    if missing or extra:
        return f"rng stream sets differ: missing {missing}, unexpected {extra}"
    drifted = sorted(name for name in expected if expected[name] != actual[name])
    return f"rng stream states differ: {drifted}"
