"""Named, seeded random streams.

Every stochastic component (weather, radio loss, sensor noise, attacker
timing...) draws from its *own* stream, derived deterministically from the
experiment's master seed and the stream name.  Adding a new component or
changing how often one component draws therefore never perturbs any other
component's sequence — the property that makes ablation experiments
comparable across code revisions.
"""

import hashlib
import random
from typing import Any, Dict, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStream:
    """A thin wrapper over :class:`random.Random` with convenience draws."""

    def __init__(self, seed: int, name: str = "") -> None:
        self.name = name
        self.seed = seed
        self._rng = random.Random(seed)

    def random(self) -> float:
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        return self._rng.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        return self._rng.sample(list(seq), k)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._rng.random() < p

    def bounded_gauss(self, mu: float, sigma: float, low: float, high: float) -> float:
        """Gaussian draw clamped to ``[low, high]``."""
        return max(low, min(high, self._rng.gauss(mu, sigma)))

    def token_bytes(self, n: int) -> bytes:
        """Deterministic pseudo-random bytes (for simulated keys/nonces)."""
        return bytes(self._rng.getrandbits(8) for _ in range(n))

    def getstate(self) -> tuple:
        """The underlying :meth:`random.Random.getstate` tuple (picklable)."""
        return self._rng.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore the draw position captured by :meth:`getstate`."""
        self._rng.setstate(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededStream(name={self.name!r}, seed={self.seed})"


class RngRegistry:
    """Factory and cache of named :class:`SeededStream` objects."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, SeededStream] = {}

    def stream(self, name: str) -> SeededStream:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = SeededStream(derive_seed(self.master_seed, name), name)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from ``name``.

        Useful for parameter sweeps: each sweep point forks the registry so
        points are independent yet reproducible.
        """
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def stream_names(self) -> list:
        return sorted(self._streams)

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serializable registry state: master seed plus every created
        stream's :meth:`random.Random.getstate` tuple, keyed by name."""
        return {
            "master_seed": self.master_seed,
            "streams": {
                name: stream.getstate()
                for name, stream in sorted(self._streams.items())
            },
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore stream states captured by :meth:`snapshot`.

        Streams are re-derived by name from the master seed (the same
        lazy path as normal use), then fast-forwarded with ``setstate``;
        streams first touched *after* the snapshot was taken start from
        their derived seed exactly as in the original run.
        """
        from repro.simkernel.errors import SnapshotError

        if state["master_seed"] != self.master_seed:
            raise SnapshotError(
                f"snapshot master seed {state['master_seed']} does not match "
                f"registry master seed {self.master_seed}"
            )
        for name, rng_state in state["streams"].items():
            self.stream(name).setstate(rng_state)
