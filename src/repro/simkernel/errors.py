"""Exception types raised by the simulation kernel."""


class SimulationError(RuntimeError):
    """Base class for kernel-level failures (bad schedule, reversed clock...)."""


class StopSimulation(Exception):
    """Raised by a process or callback to stop the run immediately.

    The simulator catches it, drains nothing further, and returns normally;
    the exception carries an optional ``reason`` used in the trace log.
    """

    def __init__(self, reason: str = "stopped") -> None:
        super().__init__(reason)
        self.reason = reason


class ScheduleInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


class ProcessError(SimulationError):
    """A simulation process misbehaved (yielded a bad value, double-started...)."""
