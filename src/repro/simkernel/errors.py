"""Exception types raised by the simulation kernel.

This module also hosts :class:`ReproError`, the root of the repository's
unified exception hierarchy: topic validation errors, context-broker
lookup errors, fault-plan validation errors and platform lifecycle errors
all derive from it, so ``except ReproError`` catches any failure raised by
the platform's own code (as opposed to plain Python bugs).  Subsystems
keep their historical secondary bases (``ValueError``, ``RuntimeError``)
so existing ``except`` clauses continue to work.
"""


class ReproError(Exception):
    """Root of every exception raised by the repro platform."""


class SimulationError(ReproError, RuntimeError):
    """Base class for kernel-level failures (bad schedule, reversed clock...)."""


class StopSimulation(Exception):
    """Raised by a process or callback to stop the run immediately.

    The simulator catches it, drains nothing further, and returns normally;
    the exception carries an optional ``reason`` used in the trace log.
    """

    def __init__(self, reason: str = "stopped") -> None:
        super().__init__(reason)
        self.reason = reason


class ScheduleInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


class ProcessError(SimulationError):
    """A simulation process misbehaved (yielded a bad value, double-started...)."""


class SnapshotError(SimulationError):
    """A kernel snapshot could not be taken, restored or verified."""
