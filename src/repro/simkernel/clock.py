"""Virtual simulation clock.

Simulation time is a ``float`` number of seconds from the start of the run.
Helpers convert to human units (minutes/hours/days) because the agronomic
substrate naturally thinks in days while the network substrate thinks in
milliseconds.
"""

from repro.simkernel.errors import SimulationError

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


class SimClock:
    """Monotone virtual clock owned by the :class:`~repro.simkernel.simulator.Simulator`.

    Only the simulator advances it; everyone else reads ``now``.  ``now``
    is a plain attribute, not a property: the kernel and every hot path
    read it millions of times per season and the descriptor-protocol
    indirection was a measurable slice of the run loop.  Mutate it only
    through :meth:`advance_to`/:meth:`restore`.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self.now = float(start)

    @property
    def now_minutes(self) -> float:
        return self.now / MINUTE

    @property
    def now_hours(self) -> float:
        return self.now / HOUR

    @property
    def now_days(self) -> float:
        return self.now / DAY

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t`` (kernel use only)."""
        if t < self.now:
            raise SimulationError(
                f"clock cannot move backwards: now={self.now!r}, target={t!r}"
            )
        self.now = t

    def snapshot(self) -> float:
        """The clock's serializable state: just the current time."""
        return self.now

    def restore(self, t: float) -> None:
        """Set the clock from a snapshot (restore use only).

        Unlike :meth:`advance_to` this may move the clock in either
        direction — a restore target is typically a *fresh* clock at 0,
        but re-restoring an older snapshot onto a used kernel is legal.
        """
        if t < 0:
            raise SimulationError(f"cannot restore clock to negative time {t!r}")
        self.now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now:.6f})"
