"""Deterministic discrete-event simulation kernel.

Everything in the SWAMP reproduction runs on this kernel: device firmware
loops, radio links, the MQTT broker, the context broker, fog/cloud sync,
attackers and detectors are all simulation processes scheduled on a single
virtual clock.  Determinism is a hard requirement (experiments must be
reproducible bit-for-bit from a seed), so:

* all randomness flows through named, seeded :class:`~repro.simkernel.rng.RngRegistry`
  streams, and
* event ties are broken by a monotone sequence number, never by object id
  or insertion races.
"""

from repro.simkernel.clock import SimClock
from repro.simkernel.errors import (
    ReproError,
    SimulationError,
    SnapshotError,
    StopSimulation,
)
from repro.simkernel.events import Event, EventQueue
from repro.simkernel.process import Process, ProcessState
from repro.simkernel.rng import RngRegistry, SeededStream
from repro.simkernel.simulator import Simulator
from repro.simkernel.snapshot import (
    SNAPSHOT_VERSION,
    KernelSnapshot,
    compare_fingerprints,
)
from repro.simkernel.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "KernelSnapshot",
    "Process",
    "ProcessState",
    "ReproError",
    "RngRegistry",
    "SNAPSHOT_VERSION",
    "SeededStream",
    "SimClock",
    "SimulationError",
    "Simulator",
    "SnapshotError",
    "StopSimulation",
    "TraceLog",
    "TraceRecord",
    "compare_fingerprints",
]
