"""Generator-based simulation processes.

A process is a Python generator driven by the simulator.  It may yield:

* a ``float``/``int`` — sleep that many simulated seconds;
* a :class:`Signal` — block until someone fires the signal (a value may be
  carried through to the generator).

Processes model everything with an autonomous clock in SWAMP: device
firmware sampling loops, irrigation controllers, attacker scripts, fog sync
daemons.  Purely reactive components (brokers, links) use plain event
callbacks instead, which are cheaper.
"""

import enum
from typing import Any, Generator, List, Optional, Tuple

from repro.simkernel.errors import ProcessError


class ProcessState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    KILLED = "killed"


class Signal:
    """A one-to-many wakeup primitive.

    Processes yield the signal to block on it; :meth:`fire` wakes all current
    waiters (delivering ``value`` as the result of their ``yield``).  A signal
    can be fired repeatedly; each firing wakes only the waiters blocked at
    that moment.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List["Process"] = []
        self.fire_count = 0

    def add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def discard_waiter(self, process: "Process") -> None:
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def fire(self, value: Any = None) -> int:
        """Wake all waiters now; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        for process in waiters:
            process._wake(value)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """Kernel-side handle for a running generator."""

    def __init__(self, simulator, generator: Generator, name: str) -> None:
        self._sim = simulator
        self._gen = generator
        self.name = name
        self.state = ProcessState.CREATED
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._pending_event = None
        self._waiting_signal: Optional[Signal] = None
        self.done_signal = Signal(f"{name}.done")
        self._timer_label = f"proc:{name}"

    # -- kernel interface ---------------------------------------------------

    def start(self) -> None:
        if self.state is not ProcessState.CREATED:
            raise ProcessError(f"process {self.name!r} started twice")
        self.state = ProcessState.RUNNING
        self._step(None)

    def kill(self, reason: str = "killed") -> None:
        """Terminate the process without running any more of its body."""
        if self.state is not ProcessState.RUNNING:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_signal is not None:
            self._waiting_signal.discard_waiter(self)
            self._waiting_signal = None
        self._gen.close()
        self.state = ProcessState.KILLED
        self.result = reason
        self.done_signal.fire(self)

    def _wake(self, value: Any) -> None:
        """Called by a Signal when it fires."""
        self._waiting_signal = None
        self._step(value)

    def _step(self, send_value: Any) -> None:
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.state = ProcessState.FINISHED
            self.result = stop.value
            self.done_signal.fire(self)
            return
        except Exception as exc:
            self.state = ProcessState.FAILED
            self.error = exc
            self.done_signal.fire(self)
            self._sim.on_process_failure(self, exc)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0:
                self._fail(ProcessError(f"process {self.name!r} yielded negative delay {delay}"))
                return
            self._pending_event = self._sim.schedule(
                delay, self._on_timer, label=self._timer_label
            )
            return
        if isinstance(yielded, Signal):
            self._waiting_signal = yielded
            yielded.add_waiter(self)
            return
        self._fail(
            ProcessError(
                f"process {self.name!r} yielded unsupported value {yielded!r}; "
                "yield a delay (seconds) or a Signal"
            )
        )

    def _on_timer(self) -> None:
        self._pending_event = None
        self._step(None)

    def _fail(self, exc: BaseException) -> None:
        self.state = ProcessState.FAILED
        self.error = exc
        self._gen.close()
        self.done_signal.fire(self)
        self._sim.on_process_failure(self, exc)

    # -- inspection ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is ProcessState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, {self.state.value})"
