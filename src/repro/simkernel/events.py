"""Event objects and the priority queue that orders them.

Ordering is ``(time, priority, seq)``: earlier time first, then lower
priority number, then FIFO by insertion sequence.  The sequence number makes
the schedule fully deterministic even when many events share a timestamp,
which happens constantly (e.g. a broker fanning out one publish to fifty
subscribers at the same instant).

The heap stores ``(time, priority, seq, event)`` tuples rather than bare
:class:`Event` objects.  ``seq`` is unique, so tuple comparison never falls
through to the event element — every sift comparison is a C-level tuple
compare instead of a Python-level ``Event.__lt__`` call.  On a full-season
pilot that one change removes ~9M interpreted comparisons from the run loop.

Cancellation accounting is exact: ``Event.cancel()`` routes through the
owning queue's :meth:`EventQueue.note_cancelled` while the event is still
in the heap, so ``len(queue)``/``__bool__`` always equal the number of live
events even though cancelled entries are only physically dropped lazily
when they reach the heap head.
"""

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simkernel.errors import SimulationError, SnapshotError

_heappush = heapq.heappush
_heappop = heapq.heappop

# Priority bands.  Lower runs first at equal timestamps.
PRIORITY_KERNEL = 0
PRIORITY_NETWORK = 10
PRIORITY_NORMAL = 50
PRIORITY_BACKGROUND = 90


class Event:
    """A scheduled callback.

    Events are single-shot.  Cancelling flips a flag and tells the owning
    queue (if the event is still pending there) to decrement its live
    count; the queue drops cancelled entries lazily when they reach the
    head.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "args",
        "label",
        "cancelled",
        "_queue",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent.

        Cancelling an event that already popped (or was never queued) only
        flips the flag; cancelling a pending event also fixes the owning
        queue's live count immediately, so ``len(queue)`` never overcounts.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue.note_cancelled()

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " CANCELLED" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, p={self.priority}, #{self.seq}, {self.label}{flag})"


class EventQueue:
    """Binary-heap event queue with lazy deletion of cancelled events."""

    def __init__(self) -> None:
        # Entries are (time, priority, seq, event) tuples; seq is unique so
        # comparisons resolve before reaching the event element.
        self._heap: list = []
        # Plain int, not itertools.count: the tie-break counter is part of
        # the kernel's snapshot state and must be readable/restorable so
        # same-timestamp ordering survives a checkpoint boundary.
        self._seq_next = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        seq = self._seq_next
        event = Event(time, priority, seq, callback, args, label)
        event._queue = self
        self._seq_next = seq + 1
        _heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises :class:`SimulationError` when empty.
        """
        heap = self._heap
        while heap:
            event = _heappop(heap)[3]
            if event.cancelled:
                # cancel() already decremented _live for this entry.
                continue
            self._live -= 1
            event._queue = None
            return event
        raise SimulationError("pop from empty event queue")

    def pop_due(self, until: Optional[float] = None) -> Optional[Event]:
        """Remove and return the next live event at or before ``until``.

        Returns ``None`` when the queue is empty or the next live event
        lies beyond ``until``.  This is the run loop's fast path: one heap
        traversal replaces the ``peek_time()`` + ``pop()`` pair.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                _heappop(heap)
                continue
            if until is not None and entry[0] > until:
                return None
            _heappop(heap)
            self._live -= 1
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            _heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Bookkeeping hook: an event pending in this queue was cancelled.

        Called by :meth:`Event.cancel` exactly once per pending event, so
        the live count stays exact between the cancel and the lazy heap
        drop.
        """
        self._live -= 1

    # -- snapshot / restore ------------------------------------------------------

    def _live_sorted(self) -> List[Event]:
        """Live events in execution order (cancelled ones excluded)."""
        return [entry[3] for entry in sorted(self._heap) if not entry[3].cancelled]

    def snapshot(self) -> Dict[str, Any]:
        """Serializable queue state: the tie-break counter plus every live
        event as a ``(time, priority, seq, callback, args, label)`` tuple.

        The tuples pickle only when the callbacks do (module-level
        functions, bound methods of picklable objects).  Run-level
        checkpoints therefore skip event capture and rebuild the queue by
        factory replay — see ``repro.core.checkpoint``.
        """
        return {
            "seq_next": self._seq_next,
            "events": [
                (e.time, e.priority, e.seq, e.callback, e.args, e.label)
                for e in self._live_sorted()
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild the queue from :meth:`snapshot` output."""
        try:
            seq_next = state["seq_next"]
            events = state["events"]
        except (KeyError, TypeError) as exc:
            raise SnapshotError(f"malformed event-queue snapshot: {exc!r}")
        # Orphan any events still pointing at this queue so a stale
        # handle cancelled after the restore cannot corrupt the rebuilt
        # live count.
        for entry in self._heap:
            entry[3]._queue = None
        heap = []
        for fields in events:
            event = Event(*fields)
            event._queue = self
            heap.append((event.time, event.priority, event.seq, event))
        heapq.heapify(heap)
        self._heap = heap
        self._live = len(heap)
        self._seq_next = seq_next

    def signature(self) -> Tuple[Tuple[float, int, int, str], ...]:
        """Order-defining fingerprint of the pending schedule.

        ``(time, priority, seq, label)`` per live event, in execution
        order, plus nothing about the callbacks — two kernels whose
        signatures match will pop the same schedule in the same order.
        Used by checkpoint restore to verify a replay reconverged.
        """
        return tuple(
            (e.time, e.priority, e.seq, e.label) for e in self._live_sorted()
        )
