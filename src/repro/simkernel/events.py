"""Event objects and the priority queue that orders them.

Ordering is ``(time, priority, seq)``: earlier time first, then lower
priority number, then FIFO by insertion sequence.  The sequence number makes
the schedule fully deterministic even when many events share a timestamp,
which happens constantly (e.g. a broker fanning out one publish to fifty
subscribers at the same instant).
"""

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simkernel.errors import SimulationError, SnapshotError

# Priority bands.  Lower runs first at equal timestamps.
PRIORITY_KERNEL = 0
PRIORITY_NETWORK = 10
PRIORITY_NORMAL = 50
PRIORITY_BACKGROUND = 90


class Event:
    """A scheduled callback.

    Events are single-shot.  Cancelling flips a flag; the queue drops
    cancelled events lazily when they reach the head.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " CANCELLED" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, p={self.priority}, #{self.seq}, {self.label}{flag})"


class EventQueue:
    """Binary-heap event queue with lazy deletion of cancelled events."""

    def __init__(self) -> None:
        self._heap: list = []
        # Plain int, not itertools.count: the tie-break counter is part of
        # the kernel's snapshot state and must be readable/restorable so
        # same-timestamp ordering survives a checkpoint boundary.
        self._seq_next = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        event = Event(time, priority, self._seq_next, callback, args, label)
        self._seq_next += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises :class:`SimulationError` when empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Bookkeeping hook: an event in the heap was cancelled externally."""
        self._live -= 1

    # -- snapshot / restore ------------------------------------------------------

    def _live_sorted(self) -> List[Event]:
        """Live events in execution order (cancelled ones excluded)."""
        return sorted(e for e in self._heap if not e.cancelled)

    def snapshot(self) -> Dict[str, Any]:
        """Serializable queue state: the tie-break counter plus every live
        event as a ``(time, priority, seq, callback, args, label)`` tuple.

        The tuples pickle only when the callbacks do (module-level
        functions, bound methods of picklable objects).  Run-level
        checkpoints therefore skip event capture and rebuild the queue by
        factory replay — see ``repro.core.checkpoint``.
        """
        return {
            "seq_next": self._seq_next,
            "events": [
                (e.time, e.priority, e.seq, e.callback, e.args, e.label)
                for e in self._live_sorted()
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild the queue from :meth:`snapshot` output."""
        try:
            seq_next = state["seq_next"]
            events = state["events"]
        except (KeyError, TypeError) as exc:
            raise SnapshotError(f"malformed event-queue snapshot: {exc!r}")
        heap = [Event(*fields) for fields in events]
        heapq.heapify(heap)
        self._heap = heap
        self._live = len(heap)
        self._seq_next = seq_next

    def signature(self) -> Tuple[Tuple[float, int, int, str], ...]:
        """Order-defining fingerprint of the pending schedule.

        ``(time, priority, seq, label)`` per live event, in execution
        order, plus nothing about the callbacks — two kernels whose
        signatures match will pop the same schedule in the same order.
        Used by checkpoint restore to verify a replay reconverged.
        """
        return tuple(
            (e.time, e.priority, e.seq, e.label) for e in self._live_sorted()
        )
