"""Event objects and the priority queue that orders them.

Ordering is ``(time, priority, seq)``: earlier time first, then lower
priority number, then FIFO by insertion sequence.  The sequence number makes
the schedule fully deterministic even when many events share a timestamp,
which happens constantly (e.g. a broker fanning out one publish to fifty
subscribers at the same instant).
"""

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.simkernel.errors import SimulationError

# Priority bands.  Lower runs first at equal timestamps.
PRIORITY_KERNEL = 0
PRIORITY_NETWORK = 10
PRIORITY_NORMAL = 50
PRIORITY_BACKGROUND = 90


class Event:
    """A scheduled callback.

    Events are single-shot.  Cancelling flips a flag; the queue drops
    cancelled events lazily when they reach the head.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " CANCELLED" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, p={self.priority}, #{self.seq}, {self.label}{flag})"


class EventQueue:
    """Binary-heap event queue with lazy deletion of cancelled events."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        event = Event(time, priority, next(self._counter), callback, args, label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises :class:`SimulationError` when empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Bookkeeping hook: an event in the heap was cancelled externally."""
        self._live -= 1
