"""NDVI (Normalized Difference Vegetation Index) model.

Drones in the MATOPIBA and Guaspari pilots image the canopy; the paper's
Sybil-attack threat is fake drones submitting fabricated NDVI.  The model
maps crop state to NDVI so that (a) honest drones produce spatially coherent
maps that track stress, and (b) detectors can exploit that coherence.

NDVI rises with canopy development (Kc as a proxy) and falls with sustained
water stress (Ks).
"""

from repro.physics.crop import Crop
from repro.physics.field import FieldZone


def ndvi_for_zone(zone: FieldZone, stress_memory: float = 1.0) -> float:
    """Instantaneous NDVI of a zone.

    ``stress_memory`` lets callers pass a smoothed Ks (stress shows in the
    canopy with a lag); 1.0 means unstressed.
    """
    crop = zone.crop
    day = max(0, zone.season_day - 1)
    kc = crop.kc_at(day)
    kc_span = max(s.kc for s in crop.stages) - min(s.kc for s in crop.stages)
    kc_min = min(s.kc for s in crop.stages)
    canopy = (kc - kc_min) / kc_span if kc_span > 0 else 1.0
    stress_factor = 0.55 + 0.45 * max(0.0, min(1.0, stress_memory))
    ndvi = crop.ndvi_min + (crop.ndvi_max - crop.ndvi_min) * canopy * stress_factor
    return max(0.0, min(1.0, ndvi))


class NdviTracker:
    """Smooths zone stress into the lagged canopy response.

    One tracker per zone; call :meth:`record_day` daily with the zone's Ks,
    then :meth:`ndvi` gives the value a drone camera would measure.
    """

    def __init__(self, zone: FieldZone, memory: float = 0.9) -> None:
        if not 0.0 <= memory < 1.0:
            raise ValueError("memory must be in [0, 1)")
        self.zone = zone
        self.memory = memory
        self._smoothed_ks = 1.0

    def record_day(self, ks: float) -> None:
        self._smoothed_ks = self.memory * self._smoothed_ks + (1.0 - self.memory) * ks

    def ndvi(self) -> float:
        return ndvi_for_zone(self.zone, stress_memory=self._smoothed_ks)
