"""Agro-physics substrate.

The real SWAMP pilots run on actual farms; this package is the simulated
replacement (see DESIGN.md, substitution table).  It provides:

* :mod:`~repro.physics.weather` — synthetic daily weather for the four pilot
  climates (temperate Po valley, semi-arid Cartagena, subtropical Pinhal,
  tropical-savanna MATOPIBA);
* :mod:`~repro.physics.et0` — FAO-56 reference evapotranspiration
  (Penman-Monteith, plus the Hargreaves fallback used when a pilot lacks a
  full weather station);
* :mod:`~repro.physics.soil` — per-zone soil water balance (FAO-56 chapter 8
  root-zone depletion bookkeeping in volumetric form);
* :mod:`~repro.physics.crop` — crop phenology, Kc curves and the FAO-33
  yield-response-to-water (Ky) model;
* :mod:`~repro.physics.field` — a spatial grid of zones with correlated soil
  variability (what makes VRI worthwhile, experiment E2);
* :mod:`~repro.physics.ndvi` — canopy NDVI model for the drone/Sybil
  experiments (E6).

Everything here is deterministic given the RNG streams passed in; nothing
imports the simulator.
"""

from repro.physics.crop import Crop, CropStage, GUASPARI_GRAPE, MAIZE, SOYBEAN, TOMATO_PROCESSING, LETTUCE
from repro.physics.et0 import et0_hargreaves, et0_penman_monteith
from repro.physics.field import Field, FieldZone
from repro.physics.ndvi import ndvi_for_zone
from repro.physics.soil import SoilProperties, SoilWaterBalance, CLAY, LOAM, SANDY_LOAM, SILTY_CLAY
from repro.physics.weather import (
    BARREIRAS_MATOPIBA,
    CARTAGENA,
    ClimateProfile,
    DailyWeather,
    EMILIA_ROMAGNA,
    PINHAL,
    WeatherGenerator,
)

__all__ = [
    "BARREIRAS_MATOPIBA",
    "CARTAGENA",
    "CLAY",
    "ClimateProfile",
    "Crop",
    "CropStage",
    "DailyWeather",
    "EMILIA_ROMAGNA",
    "Field",
    "FieldZone",
    "GUASPARI_GRAPE",
    "LETTUCE",
    "LOAM",
    "MAIZE",
    "PINHAL",
    "SANDY_LOAM",
    "SILTY_CLAY",
    "SOYBEAN",
    "SoilProperties",
    "SoilWaterBalance",
    "TOMATO_PROCESSING",
    "WeatherGenerator",
    "et0_hargreaves",
    "et0_penman_monteith",
    "ndvi_for_zone",
]
