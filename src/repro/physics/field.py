"""Spatial field model: a grid of management zones.

Spatial variability of water-holding capacity is what makes Variable Rate
Irrigation pay off (experiment E2): with a uniform field, uniform-rate
irrigation is already optimal; with variable soils, the uniform rate
over-waters some zones and stresses others.  Zones get soil properties
scaled by a spatially *correlated* random factor — neighbouring zones are
similar, as in a real field — produced by smoothing white noise with its
grid neighbours.
"""

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.physics.crop import Crop, YieldTracker
from repro.physics.soil import SoilProperties, SoilWaterBalance
from repro.simkernel.rng import SeededStream


@dataclass
class FieldZone:
    """One management zone: soil water balance + crop yield tracking."""

    zone_id: str
    row: int
    col: int
    area_ha: float
    water_balance: SoilWaterBalance
    crop: Crop
    yield_tracker: YieldTracker = dataclass_field(init=False)
    season_day: int = 0
    capacity_factor: float = 1.0

    def __post_init__(self) -> None:
        self.yield_tracker = YieldTracker(self.crop)

    @property
    def theta(self) -> float:
        return self.water_balance.theta

    def advance_day(self, et0_mm: float, rain_mm: float) -> dict:
        """One day of crop water dynamics (rain applied before extraction)."""
        day = self.season_day
        kc = self.crop.kc_at(day)
        stage = self.crop.stage_at(day)
        self.water_balance.depletion_fraction_p = stage.depletion_fraction_p
        self.water_balance.set_root_depth(self.crop.root_depth_at(day))
        if rain_mm > 0:
            self.water_balance.rain(rain_mm)
        result = self.water_balance.step(et0_mm * kc)
        self.yield_tracker.record_day(day, result["et_actual_mm"], et0_mm * kc)
        self.season_day += 1
        return result

    def irrigate(self, mm: float) -> dict:
        return self.water_balance.irrigate(mm)


class Field:
    """A rows×cols grid of zones with correlated soil variability."""

    def __init__(
        self,
        name: str,
        rows: int,
        cols: int,
        base_soil: SoilProperties,
        crop: Crop,
        rng: SeededStream,
        zone_area_ha: float = 1.0,
        spatial_cv: float = 0.0,
        initial_theta: Optional[float] = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if spatial_cv < 0:
            raise ValueError("spatial_cv must be non-negative")
        self.name = name
        self.rows = rows
        self.cols = cols
        self.crop = crop
        self.base_soil = base_soil
        self.zone_area_ha = zone_area_ha
        self.spatial_cv = spatial_cv
        factors = self._correlated_factors(rows, cols, spatial_cv, rng)
        self.zones: List[FieldZone] = []
        self._by_position: Dict[Tuple[int, int], FieldZone] = {}
        for r in range(rows):
            for c in range(cols):
                factor = factors[r][c]
                soil = base_soil.scaled(factor) if spatial_cv > 0 else base_soil
                balance = SoilWaterBalance(
                    soil,
                    root_depth_m=crop.root_depth_at(0),
                    depletion_fraction_p=crop.stages[0].depletion_fraction_p,
                    initial_theta=initial_theta,
                )
                zone = FieldZone(
                    zone_id=f"{name}/z{r}-{c}",
                    row=r,
                    col=c,
                    area_ha=zone_area_ha,
                    water_balance=balance,
                    crop=crop,
                    capacity_factor=factor,
                )
                self.zones.append(zone)
                self._by_position[(r, c)] = zone

    @staticmethod
    def _correlated_factors(
        rows: int, cols: int, cv: float, rng: SeededStream
    ) -> List[List[float]]:
        """Spatially smoothed multiplicative capacity factors (mean ≈ 1)."""
        noise = [[rng.gauss(0.0, 1.0) for _ in range(cols)] for _ in range(rows)]
        if cv == 0.0:
            return [[1.0] * cols for _ in range(rows)]
        smoothed = [[0.0] * cols for _ in range(rows)]
        for r in range(rows):
            for c in range(cols):
                total, count = 0.0, 0
                for dr in (-1, 0, 1):
                    for dc in (-1, 0, 1):
                        rr, cc = r + dr, c + dc
                        if 0 <= rr < rows and 0 <= cc < cols:
                            total += noise[rr][cc]
                            count += 1
                smoothed[r][c] = total / count
        # Smoothing shrinks the variance; rescale to hit the requested CV.
        flat = [v for row in smoothed for v in row]
        mean = sum(flat) / len(flat)
        var = sum((v - mean) ** 2 for v in flat) / len(flat)
        std = var ** 0.5 or 1.0
        return [
            [max(0.4, 1.0 + (v - mean) / std * cv) for v in row]
            for row in smoothed
        ]

    # -- access -----------------------------------------------------------

    def zone(self, row: int, col: int) -> FieldZone:
        return self._by_position[(row, col)]

    def zone_by_id(self, zone_id: str) -> FieldZone:
        for zone in self.zones:
            if zone.zone_id == zone_id:
                return zone
        raise KeyError(zone_id)

    def __iter__(self) -> Iterator[FieldZone]:
        return iter(self.zones)

    def __len__(self) -> int:
        return len(self.zones)

    @property
    def area_ha(self) -> float:
        return sum(z.area_ha for z in self.zones)

    # -- bulk dynamics -----------------------------------------------------------

    def advance_day(self, et0_mm: float, rain_mm: float) -> None:
        """Advance every zone one day.

        Fast path: all zones share the field's crop and (normally) the same
        season clock, so the per-day crop lookups — Kc, growth stage, root
        depth — are hoisted out of the zone loop.  The per-zone arithmetic
        is exactly :meth:`FieldZone.advance_day`'s, so results are
        bit-identical to the per-zone path, which remains as the fallback
        for zones whose clocks were advanced individually.
        """
        zones = self.zones
        if not zones:
            return
        crop = self.crop
        day = zones[0].season_day
        if any(z.season_day != day or z.crop is not crop for z in zones):
            for zone in zones:
                zone.advance_day(et0_mm, rain_mm)
            return
        etc_mm = et0_mm * crop.kc_at(day)
        p = crop.stage_at(day).depletion_fraction_p
        root_depth = crop.root_depth_at(day)
        next_day = day + 1
        for zone in zones:
            balance = zone.water_balance
            balance.depletion_fraction_p = p
            balance.set_root_depth(root_depth)
            if rain_mm > 0:
                balance.rain(rain_mm)
            result = balance.step(etc_mm)
            zone.yield_tracker.record_day(day, result["et_actual_mm"], etc_mm)
            zone.season_day = next_day

    # -- aggregate accounting -----------------------------------------------------

    def total_irrigation_m3(self) -> float:
        """Total irrigation applied over the season, in m³ (1 mm·ha = 10 m³)."""
        return sum(z.water_balance.cum_irrigation_mm * z.area_ha * 10.0 for z in self.zones)

    def mean_relative_yield(self) -> float:
        return sum(z.yield_tracker.relative_yield for z in self.zones) / len(self.zones)

    def total_yield_t(self) -> float:
        return sum(z.yield_tracker.yield_t_ha * z.area_ha for z in self.zones)

    def mean_theta(self) -> float:
        return sum(z.theta for z in self.zones) / len(self.zones)

    def capacity_cv(self) -> float:
        """Realized coefficient of variation of the capacity factors."""
        factors = [z.capacity_factor for z in self.zones]
        mean = sum(factors) / len(factors)
        var = sum((f - mean) ** 2 for f in factors) / len(factors)
        return (var ** 0.5) / mean if mean else 0.0
