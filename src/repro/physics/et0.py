"""Reference evapotranspiration (ET0).

Implements the two estimators used across the SWAMP pilots:

* FAO-56 Penman-Monteith (equation 6 of Allen et al., 1998) for sites with a
  full weather station (temperature, humidity, wind, radiation);
* Hargreaves-Samani for sensor-poor sites (temperature extremes only).

All functions take daily values and return mm/day.
"""

import math
from functools import lru_cache

# Psychrometric and physical constants (FAO-56).
_SOLAR_CONSTANT = 0.0820  # MJ m-2 min-1
_STEFAN_BOLTZMANN = 4.903e-9  # MJ K-4 m-2 day-1


def saturation_vapor_pressure(temp_c: float) -> float:
    """e°(T) in kPa (FAO-56 eq. 11)."""
    return 0.6108 * math.exp(17.27 * temp_c / (temp_c + 237.3))


def slope_vapor_pressure_curve(temp_c: float) -> float:
    """Δ in kPa/°C (FAO-56 eq. 13)."""
    return 4098.0 * saturation_vapor_pressure(temp_c) / (temp_c + 237.3) ** 2


@lru_cache(maxsize=256)
def psychrometric_constant(altitude_m: float) -> float:
    """γ in kPa/°C from site altitude (FAO-56 eq. 7-8).

    Memoized: a run uses a handful of site altitudes, and the function is
    pure, so the cache returns the exact same float the formula would.
    """
    pressure = 101.3 * ((293.0 - 0.0065 * altitude_m) / 293.0) ** 5.26
    return 0.000665 * pressure


@lru_cache(maxsize=4096)
def extraterrestrial_radiation(latitude_deg: float, day_of_year: int) -> float:
    """Ra in MJ m-2 day-1 (FAO-56 eq. 21).

    Memoized on ``(latitude, day-of-year)``: every probe/zone/day at the
    same site re-asks for the same trigonometric pile.  Pure function, so
    cached values are bit-identical to recomputation.
    """
    lat = math.radians(latitude_deg)
    dr = 1.0 + 0.033 * math.cos(2.0 * math.pi * day_of_year / 365.0)
    declination = 0.409 * math.sin(2.0 * math.pi * day_of_year / 365.0 - 1.39)
    x = -math.tan(lat) * math.tan(declination)
    x = max(-1.0, min(1.0, x))
    sunset_hour_angle = math.acos(x)
    return (
        24.0 * 60.0 / math.pi
        * _SOLAR_CONSTANT
        * dr
        * (
            sunset_hour_angle * math.sin(lat) * math.sin(declination)
            + math.cos(lat) * math.cos(declination) * math.sin(sunset_hour_angle)
        )
    )


def clear_sky_radiation(ra: float, altitude_m: float) -> float:
    """Rso in MJ m-2 day-1 (FAO-56 eq. 37)."""
    return (0.75 + 2e-5 * altitude_m) * ra


def et0_penman_monteith(
    tmin_c: float,
    tmax_c: float,
    rh_mean_pct: float,
    wind_2m_ms: float,
    solar_mj_m2: float,
    latitude_deg: float,
    day_of_year: int,
    altitude_m: float = 100.0,
) -> float:
    """Daily FAO-56 Penman-Monteith ET0 in mm/day.

    ``solar_mj_m2`` is measured incoming shortwave radiation Rs.
    """
    tmean = (tmin_c + tmax_c) / 2.0
    delta = slope_vapor_pressure_curve(tmean)
    gamma = psychrometric_constant(altitude_m)
    es = (saturation_vapor_pressure(tmin_c) + saturation_vapor_pressure(tmax_c)) / 2.0
    ea = es * max(0.0, min(100.0, rh_mean_pct)) / 100.0

    ra = extraterrestrial_radiation(latitude_deg, day_of_year)
    rso = max(clear_sky_radiation(ra, altitude_m), 1e-6)
    rs = max(0.0, min(solar_mj_m2, rso))
    albedo = 0.23
    rns = (1.0 - albedo) * rs
    tmax_k4 = (tmax_c + 273.16) ** 4
    tmin_k4 = (tmin_c + 273.16) ** 4
    rnl = (
        _STEFAN_BOLTZMANN
        * (tmax_k4 + tmin_k4) / 2.0
        * (0.34 - 0.14 * math.sqrt(max(ea, 0.0)))
        * (1.35 * rs / rso - 0.35)
    )
    rn = rns - max(0.0, rnl)
    soil_heat_flux = 0.0  # negligible at daily scale (FAO-56 eq. 42)

    numerator = 0.408 * delta * (rn - soil_heat_flux) + gamma * 900.0 / (
        tmean + 273.0
    ) * wind_2m_ms * (es - ea)
    denominator = delta + gamma * (1.0 + 0.34 * wind_2m_ms)
    return max(0.0, numerator / denominator)


def et0_hargreaves(
    tmin_c: float,
    tmax_c: float,
    latitude_deg: float,
    day_of_year: int,
) -> float:
    """Hargreaves-Samani ET0 in mm/day (FAO-56 eq. 52).

    Needs only temperature extremes — the estimator a pilot falls back to
    when its weather station is down or was never installed.
    """
    tmean = (tmin_c + tmax_c) / 2.0
    ra = extraterrestrial_radiation(latitude_deg, day_of_year)
    # 0.408 converts MJ m-2 day-1 to mm/day equivalent evaporation.
    spread = max(0.0, tmax_c - tmin_c)
    return max(0.0, 0.0023 * (tmean + 17.8) * math.sqrt(spread) * 0.408 * ra)
