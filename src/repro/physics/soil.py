"""Soil water balance (FAO-56 style, volumetric form).

Each irrigation-management zone carries one :class:`SoilWaterBalance`.  The
state variable is volumetric water content θ (m³/m³) of the root zone.
Daily (or sub-daily) updates apply:

* infiltration of rain + irrigation, with runoff above a maximum
  infiltration amount and deep percolation above field capacity;
* crop evapotranspiration ``ETc = Kc · ET0`` reduced by the water-stress
  coefficient Ks (linear below the readily-available-water threshold,
  FAO-56 eq. 84);
* a small direct evaporation floor so bare soil still dries.

The same object answers the two questions the platform asks constantly:
"what would a soil-moisture probe read here?" (θ plus sensor noise, handled
by the device layer) and "how stressed is the crop?" (Ks, consumed by the
yield model).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SoilProperties:
    """Static hydraulic properties of a soil type."""

    name: str
    theta_sat: float  # saturation, m3/m3
    theta_fc: float  # field capacity
    theta_wp: float  # wilting point
    max_infiltration_mm_day: float
    drainage_rate: float  # fraction of excess-over-FC drained per day

    def __post_init__(self) -> None:
        if not (0.0 < self.theta_wp < self.theta_fc < self.theta_sat <= 1.0):
            raise ValueError(
                f"soil {self.name!r}: need 0 < wp < fc < sat <= 1, got "
                f"wp={self.theta_wp}, fc={self.theta_fc}, sat={self.theta_sat}"
            )

    def scaled(self, factor: float) -> "SoilProperties":
        """A variant with water-holding capacity scaled by ``factor``.

        Used to synthesize spatial variability across field zones: the
        FC-WP span stretches/shrinks around the wilting point while staying
        physically valid.
        """
        span = (self.theta_fc - self.theta_wp) * factor
        fc = min(self.theta_wp + span, self.theta_sat - 0.01)
        return SoilProperties(
            name=f"{self.name}*{factor:.2f}",
            theta_sat=self.theta_sat,
            theta_fc=fc,
            theta_wp=self.theta_wp,
            max_infiltration_mm_day=self.max_infiltration_mm_day,
            drainage_rate=self.drainage_rate,
        )


SANDY_LOAM = SoilProperties("sandy-loam", theta_sat=0.41, theta_fc=0.21, theta_wp=0.09,
                            max_infiltration_mm_day=120.0, drainage_rate=0.7)
LOAM = SoilProperties("loam", theta_sat=0.46, theta_fc=0.28, theta_wp=0.13,
                      max_infiltration_mm_day=80.0, drainage_rate=0.5)
SILTY_CLAY = SoilProperties("silty-clay", theta_sat=0.52, theta_fc=0.38, theta_wp=0.22,
                            max_infiltration_mm_day=40.0, drainage_rate=0.25)
CLAY = SoilProperties("clay", theta_sat=0.55, theta_fc=0.41, theta_wp=0.26,
                      max_infiltration_mm_day=25.0, drainage_rate=0.15)


class SoilWaterBalance:
    """Dynamic root-zone water bookkeeping for one zone."""

    def __init__(
        self,
        soil: SoilProperties,
        root_depth_m: float = 0.5,
        depletion_fraction_p: float = 0.5,
        initial_theta: float = None,
    ) -> None:
        if root_depth_m <= 0:
            raise ValueError("root depth must be positive")
        self.soil = soil
        self.root_depth_m = root_depth_m
        self.depletion_fraction_p = depletion_fraction_p
        self.theta = initial_theta if initial_theta is not None else soil.theta_fc
        if not 0.0 < self.theta <= soil.theta_sat:
            raise ValueError(f"initial theta {self.theta} outside (0, sat]")
        # Cumulative fluxes (mm) for water accounting in experiments.
        self.cum_irrigation_mm = 0.0
        self.cum_rain_mm = 0.0
        self.cum_et_actual_mm = 0.0
        self.cum_et_potential_mm = 0.0
        self.cum_drainage_mm = 0.0
        self.cum_runoff_mm = 0.0

    # -- unit helpers -----------------------------------------------------------

    def _mm_to_theta(self, mm: float) -> float:
        return mm / (self.root_depth_m * 1000.0)

    def _theta_to_mm(self, theta: float) -> float:
        return theta * self.root_depth_m * 1000.0

    # -- derived quantities -----------------------------------------------------

    @property
    def total_available_water_mm(self) -> float:
        """TAW: water held between field capacity and wilting point."""
        return self._theta_to_mm(self.soil.theta_fc - self.soil.theta_wp)

    @property
    def readily_available_water_mm(self) -> float:
        """RAW = p · TAW."""
        return self.depletion_fraction_p * self.total_available_water_mm

    @property
    def depletion_mm(self) -> float:
        """Root-zone depletion Dr below field capacity (≥ 0)."""
        return max(0.0, self._theta_to_mm(self.soil.theta_fc - self.theta))

    @property
    def available_fraction(self) -> float:
        """Fraction of TAW still available (1 at FC, 0 at WP)."""
        taw = self.total_available_water_mm
        if taw <= 0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - self.depletion_mm / taw))

    @property
    def stress_coefficient_ks(self) -> float:
        """FAO-56 eq. 84: 1 while depletion ≤ RAW, linear to 0 at TAW."""
        dr = self.depletion_mm
        raw = self.readily_available_water_mm
        taw = self.total_available_water_mm
        if dr <= raw:
            return 1.0
        if dr >= taw:
            return 0.0
        return (taw - dr) / (taw - raw)

    # -- dynamics -----------------------------------------------------------

    def apply_water(self, mm: float, dt_days: float = 1.0) -> dict:
        """Apply ``mm`` of rain/irrigation; returns infiltrated/runoff split."""
        if mm < 0:
            raise ValueError("water amount must be non-negative")
        max_infiltration = self.soil.max_infiltration_mm_day * dt_days
        infiltrated = min(mm, max_infiltration)
        runoff = mm - infiltrated
        self.theta += self._mm_to_theta(infiltrated)
        # Instant ponding above saturation becomes runoff too.
        if self.theta > self.soil.theta_sat:
            excess = self._theta_to_mm(self.theta - self.soil.theta_sat)
            runoff += excess
            infiltrated -= excess
            self.theta = self.soil.theta_sat
        self.cum_runoff_mm += runoff
        return {"infiltrated_mm": infiltrated, "runoff_mm": runoff}

    def irrigate(self, mm: float, dt_days: float = 1.0) -> dict:
        self.cum_irrigation_mm += mm
        return self.apply_water(mm, dt_days)

    def rain(self, mm: float, dt_days: float = 1.0) -> dict:
        self.cum_rain_mm += mm
        return self.apply_water(mm, dt_days)

    def step(self, et_crop_potential_mm: float, dt_days: float = 1.0) -> dict:
        """Advance ``dt_days``: extract ET (stress-limited) and drain.

        ``et_crop_potential_mm`` is ETc = Kc·ET0 over the step.  Returns the
        actual ET extracted and drainage.
        """
        if et_crop_potential_mm < 0:
            raise ValueError("ET demand must be non-negative")
        ks = self.stress_coefficient_ks
        et_actual = et_crop_potential_mm * ks
        # Never extract below wilting point.
        max_extractable = self._theta_to_mm(max(0.0, self.theta - self.soil.theta_wp))
        et_actual = min(et_actual, max_extractable)
        self.theta -= self._mm_to_theta(et_actual)
        self.cum_et_actual_mm += et_actual
        self.cum_et_potential_mm += et_crop_potential_mm

        # Drainage of water above field capacity.
        drainage = 0.0
        if self.theta > self.soil.theta_fc:
            excess_mm = self._theta_to_mm(self.theta - self.soil.theta_fc)
            drainage = excess_mm * min(1.0, self.soil.drainage_rate * dt_days)
            self.theta -= self._mm_to_theta(drainage)
            self.cum_drainage_mm += drainage
        return {"et_actual_mm": et_actual, "drainage_mm": drainage, "ks": ks}

    def set_root_depth(self, root_depth_m: float) -> None:
        """Grow/shrink the root zone, conserving water content θ."""
        if root_depth_m <= 0:
            raise ValueError("root depth must be positive")
        self.root_depth_m = root_depth_m

    def water_accounting(self) -> dict:
        return {
            "irrigation_mm": self.cum_irrigation_mm,
            "rain_mm": self.cum_rain_mm,
            "et_actual_mm": self.cum_et_actual_mm,
            "et_potential_mm": self.cum_et_potential_mm,
            "drainage_mm": self.cum_drainage_mm,
            "runoff_mm": self.cum_runoff_mm,
        }
