"""Synthetic daily weather for the four SWAMP pilot climates.

The generator is a standard stochastic weather model:

* temperature follows a seasonal sinusoid with AR(1) day-to-day anomalies;
* precipitation occurrence is a two-state (wet/dry) Markov chain with
  seasonally varying transition probabilities; wet-day amounts are drawn
  from an exponential distribution with a seasonal mean;
* solar radiation is the clear-sky value scaled by a cloudiness factor that
  correlates with wet days;
* relative humidity and wind get seasonal means with noise.

Parameters are representative of each pilot's climate class (Köppen), which
is all the experiments rely on: the MATOPIBA dry season must actually be
dry, the Po valley summer must have occasional rain, Cartagena must be
water-scarce.  Southern-hemisphere profiles phase-shift the seasonality.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional

from repro.physics.et0 import (
    clear_sky_radiation,
    et0_penman_monteith,
    extraterrestrial_radiation,
)
from repro.simkernel.rng import SeededStream

import math


@dataclass(frozen=True)
class ClimateProfile:
    """Parameters of one pilot site's climate."""

    name: str
    latitude_deg: float
    altitude_m: float
    # Annual mean and half-amplitude of daily-mean temperature (°C); the
    # warmest day is mid-year for the northern hemisphere profiles and
    # year-start/end for southern ones (phase_shift_days).
    temp_mean_c: float
    temp_amplitude_c: float
    phase_shift_days: float
    diurnal_range_c: float
    temp_anomaly_sigma_c: float
    # Markov-chain rain: P(wet|dry) and P(wet|wet), each (winter, summer)
    # endpoints interpolated sinusoidally across the year.
    p_wet_dry: tuple
    p_wet_wet: tuple
    rain_mean_mm: tuple  # mean wet-day rainfall (winter, summer)
    rh_mean_pct: tuple  # (winter, summer)
    wind_mean_ms: float


# Northern-hemisphere day-of-year where summer peaks.
_NORTH_PEAK_DOY = 197.0


@lru_cache(maxsize=8192)
def _seasonal(day_of_year: int, winter_value: float, summer_value: float, phase_shift: float) -> float:
    """Interpolate between winter and summer endpoints with a sinusoid.

    Memoized on the full argument tuple: a season revisits the same
    (day-of-year, profile endpoints) combinations constantly, and the
    function is pure, so cached values match recomputation bit-for-bit.
    """
    angle = 2.0 * math.pi * (day_of_year - _NORTH_PEAK_DOY - phase_shift) / 365.0
    # cos(angle)=1 at the summer peak.
    weight = (1.0 + math.cos(angle)) / 2.0
    return winter_value + (summer_value - winter_value) * weight


EMILIA_ROMAGNA = ClimateProfile(
    name="emilia-romagna",
    latitude_deg=44.7,
    altitude_m=30.0,
    temp_mean_c=14.0,
    temp_amplitude_c=10.5,
    phase_shift_days=0.0,
    diurnal_range_c=9.0,
    temp_anomaly_sigma_c=1.8,
    p_wet_dry=(0.22, 0.12),
    p_wet_wet=(0.55, 0.35),
    rain_mean_mm=(6.5, 9.0),
    rh_mean_pct=(82.0, 62.0),
    wind_mean_ms=2.2,
)

CARTAGENA = ClimateProfile(
    name="cartagena",
    latitude_deg=37.6,
    altitude_m=10.0,
    temp_mean_c=18.5,
    temp_amplitude_c=7.5,
    phase_shift_days=0.0,
    diurnal_range_c=8.0,
    temp_anomaly_sigma_c=1.5,
    p_wet_dry=(0.08, 0.03),
    p_wet_wet=(0.35, 0.20),
    rain_mean_mm=(7.0, 5.0),
    rh_mean_pct=(72.0, 60.0),
    wind_mean_ms=3.0,
)

# Southern hemisphere: phase shift half a year.
PINHAL = ClimateProfile(
    name="espirito-santo-do-pinhal",
    latitude_deg=-22.2,
    altitude_m=870.0,
    temp_mean_c=19.5,
    temp_amplitude_c=4.5,
    phase_shift_days=182.5,
    diurnal_range_c=11.0,
    temp_anomaly_sigma_c=1.4,
    p_wet_dry=(0.10, 0.45),  # dry winter (Jun-Aug), wet summer
    p_wet_wet=(0.35, 0.70),
    rain_mean_mm=(5.0, 12.0),
    rh_mean_pct=(62.0, 78.0),
    wind_mean_ms=2.0,
)

BARREIRAS_MATOPIBA = ClimateProfile(
    name="barreiras-matopiba",
    latitude_deg=-12.15,
    altitude_m=720.0,
    temp_mean_c=24.5,
    temp_amplitude_c=2.5,
    phase_shift_days=182.5,
    diurnal_range_c=12.5,
    temp_anomaly_sigma_c=1.2,
    p_wet_dry=(0.04, 0.50),  # pronounced dry winter season
    p_wet_wet=(0.25, 0.72),
    rain_mean_mm=(4.0, 13.0),
    rh_mean_pct=(45.0, 78.0),
    wind_mean_ms=2.4,
)


@dataclass
class DailyWeather:
    """One day of weather at a site."""

    day_of_year: int
    day_index: int
    tmin_c: float
    tmax_c: float
    rh_mean_pct: float
    wind_ms: float
    solar_mj_m2: float
    rain_mm: float
    et0_mm: float

    @property
    def tmean_c(self) -> float:
        return (self.tmin_c + self.tmax_c) / 2.0

    @property
    def is_wet(self) -> bool:
        return self.rain_mm > 0.1


class WeatherGenerator:
    """Stateful daily weather generator for one site."""

    def __init__(
        self,
        profile: ClimateProfile,
        rng: SeededStream,
        start_day_of_year: int = 1,
    ) -> None:
        self.profile = profile
        self.rng = rng
        self.day_of_year = start_day_of_year
        self.day_index = 0
        self._anomaly = 0.0
        self._wet_yesterday = False

    def step(self) -> DailyWeather:
        """Generate the next day."""
        p = self.profile
        doy = self.day_of_year

        # Temperature: seasonal mean + AR(1) anomaly.
        seasonal_mean = _seasonal(
            doy, p.temp_mean_c - p.temp_amplitude_c, p.temp_mean_c + p.temp_amplitude_c, p.phase_shift_days
        )
        self._anomaly = 0.7 * self._anomaly + self.rng.gauss(0.0, p.temp_anomaly_sigma_c)
        tmean = seasonal_mean + self._anomaly
        half_range = p.diurnal_range_c / 2.0 * self.rng.uniform(0.85, 1.15)
        tmin = tmean - half_range
        tmax = tmean + half_range

        # Rain: Markov occurrence, exponential amount.
        p_wet = _seasonal(
            doy,
            p.p_wet_wet[0] if self._wet_yesterday else p.p_wet_dry[0],
            p.p_wet_wet[1] if self._wet_yesterday else p.p_wet_dry[1],
            p.phase_shift_days,
        )
        wet = self.rng.bernoulli(p_wet)
        rain = 0.0
        if wet:
            mean_amount = _seasonal(doy, p.rain_mean_mm[0], p.rain_mean_mm[1], p.phase_shift_days)
            rain = self.rng.expovariate(1.0 / mean_amount)
        self._wet_yesterday = wet

        # Solar: clear-sky scaled by cloudiness (wet days are cloudier).
        ra = extraterrestrial_radiation(p.latitude_deg, doy)
        rso = clear_sky_radiation(ra, p.altitude_m)
        cloud_fraction = self.rng.bounded_gauss(0.65 if wet else 0.25, 0.12, 0.05, 0.95)
        solar = rso * (1.0 - cloud_fraction * 0.75)

        # Humidity & wind.
        rh = _seasonal(doy, p.rh_mean_pct[0], p.rh_mean_pct[1], p.phase_shift_days)
        rh = self.rng.bounded_gauss(rh + (8.0 if wet else 0.0), 5.0, 20.0, 100.0)
        wind = max(0.3, self.rng.gauss(p.wind_mean_ms, 0.7))

        et0 = et0_penman_monteith(
            tmin, tmax, rh, wind, solar, p.latitude_deg, doy, p.altitude_m
        )

        day = DailyWeather(
            day_of_year=doy,
            day_index=self.day_index,
            tmin_c=tmin,
            tmax_c=tmax,
            rh_mean_pct=rh,
            wind_ms=wind,
            solar_mj_m2=solar,
            rain_mm=rain,
            et0_mm=et0,
        )
        self.day_of_year = doy % 365 + 1
        self.day_index += 1
        return day

    def generate(self, days: int) -> List[DailyWeather]:
        return [self.step() for _ in range(days)]

    def __iter__(self) -> Iterator[DailyWeather]:  # pragma: no cover - convenience
        while True:
            yield self.step()


PROFILES = {
    p.name: p for p in (EMILIA_ROMAGNA, CARTAGENA, PINHAL, BARREIRAS_MATOPIBA)
}
