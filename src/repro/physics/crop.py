"""Crop phenology, Kc curves and yield response to water.

The model follows FAO-56 (crop coefficients per growth stage, interpolated
through the development and late stages) and FAO-33 (yield response factor
Ky per stage):

    1 - Ya/Ym = Ky · (1 - ETa/ETm)

Seasonal yield is the product of per-stage relative yields — the standard
multiplicative composition, which captures that stress at flowering hurts
far more than the same stress during ripening.

Crops are defined for the four pilots: soybean (MATOPIBA), wine grape
(Guaspari), processing tomato (CBEC, a dominant Emilia-Romagna crop) and
lettuce (Intercrop's leafy vegetables), plus maize as a common baseline.
"""

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CropStage:
    name: str
    duration_days: int
    kc: float  # crop coefficient at the *end* of the stage
    ky: float  # yield response factor for stress during this stage
    root_depth_m: float  # rooting depth at the end of the stage
    depletion_fraction_p: float  # management-allowed depletion


@dataclass(frozen=True)
class Crop:
    """A crop calendar as a sequence of stages."""

    name: str
    stages: Tuple[CropStage, ...]
    max_yield_t_ha: float
    ndvi_max: float = 0.88
    ndvi_min: float = 0.18

    @property
    def season_days(self) -> int:
        return sum(s.duration_days for s in self.stages)

    def stage_at(self, day: int) -> CropStage:
        """Stage on season day ``day`` (0-based); clamps past the season."""
        if day < 0:
            raise ValueError("day must be >= 0")
        elapsed = 0
        for stage in self.stages:
            elapsed += stage.duration_days
            if day < elapsed:
                return stage
        return self.stages[-1]

    def stage_index_at(self, day: int) -> int:
        elapsed = 0
        for i, stage in enumerate(self.stages):
            elapsed += stage.duration_days
            if day < elapsed:
                return i
        return len(self.stages) - 1

    def kc_at(self, day: int) -> float:
        """Kc interpolated linearly within each stage from the previous
        stage's endpoint (FAO-56 figure 25 construction)."""
        if day >= self.season_days:
            return self.stages[-1].kc
        elapsed = 0
        prev_kc = self.stages[0].kc
        for i, stage in enumerate(self.stages):
            if day < elapsed + stage.duration_days:
                frac = (day - elapsed) / stage.duration_days
                start_kc = prev_kc if i > 0 else stage.kc
                return start_kc + (stage.kc - start_kc) * frac
            elapsed += stage.duration_days
            prev_kc = stage.kc
        return self.stages[-1].kc

    def root_depth_at(self, day: int) -> float:
        """Root depth grows linearly within stages, never shrinks."""
        if day >= self.season_days:
            return self.stages[-1].root_depth_m
        elapsed = 0
        prev_depth = self.stages[0].root_depth_m * 0.4  # planting depth
        for stage in self.stages:
            if day < elapsed + stage.duration_days:
                frac = (day - elapsed) / stage.duration_days
                depth = prev_depth + (stage.root_depth_m - prev_depth) * frac
                return max(prev_depth, depth)
            elapsed += stage.duration_days
            prev_depth = stage.root_depth_m
        return self.stages[-1].root_depth_m


class YieldTracker:
    """Accumulates per-stage ETa/ETm and computes seasonal relative yield."""

    def __init__(self, crop: Crop) -> None:
        self.crop = crop
        self._eta = [0.0] * len(crop.stages)
        self._etm = [0.0] * len(crop.stages)

    def record_day(self, day: int, et_actual_mm: float, et_potential_mm: float) -> None:
        index = self.crop.stage_index_at(day)
        self._eta[index] += et_actual_mm
        self._etm[index] += et_potential_mm

    def stage_relative_yield(self, index: int) -> float:
        etm = self._etm[index]
        if etm <= 0:
            return 1.0
        deficit = 1.0 - self._eta[index] / etm
        ky = self.crop.stages[index].ky
        return max(0.0, 1.0 - ky * deficit)

    @property
    def relative_yield(self) -> float:
        """Product of stage relative yields, in [0, 1]."""
        result = 1.0
        for i in range(len(self.crop.stages)):
            result *= self.stage_relative_yield(i)
        return max(0.0, min(1.0, result))

    @property
    def yield_t_ha(self) -> float:
        return self.relative_yield * self.crop.max_yield_t_ha


SOYBEAN = Crop(
    name="soybean",
    stages=(
        CropStage("initial", 20, kc=0.40, ky=0.40, root_depth_m=0.25, depletion_fraction_p=0.55),
        CropStage("development", 30, kc=1.15, ky=0.60, root_depth_m=0.60, depletion_fraction_p=0.55),
        CropStage("mid-flowering", 45, kc=1.15, ky=1.00, root_depth_m=1.00, depletion_fraction_p=0.50),
        CropStage("late-ripening", 25, kc=0.50, ky=0.40, root_depth_m=1.00, depletion_fraction_p=0.60),
    ),
    max_yield_t_ha=4.2,
)

MAIZE = Crop(
    name="maize",
    stages=(
        CropStage("initial", 20, kc=0.35, ky=0.40, root_depth_m=0.25, depletion_fraction_p=0.55),
        CropStage("development", 35, kc=1.20, ky=0.60, root_depth_m=0.70, depletion_fraction_p=0.55),
        CropStage("mid-tasseling", 40, kc=1.20, ky=1.30, root_depth_m=1.10, depletion_fraction_p=0.50),
        CropStage("late-maturity", 30, kc=0.55, ky=0.50, root_depth_m=1.10, depletion_fraction_p=0.60),
    ),
    max_yield_t_ha=11.0,
)

GUASPARI_GRAPE = Crop(
    name="wine-grape",
    stages=(
        CropStage("budbreak", 25, kc=0.35, ky=0.35, root_depth_m=0.60, depletion_fraction_p=0.45),
        CropStage("flowering", 30, kc=0.75, ky=0.85, root_depth_m=0.90, depletion_fraction_p=0.40),
        CropStage("veraison", 45, kc=0.80, ky=0.70, root_depth_m=1.10, depletion_fraction_p=0.40),
        # Mild late-season deficit is *desired* for wine quality; the low Ky
        # encodes that ripening tolerates deficit.
        CropStage("ripening", 35, kc=0.55, ky=0.30, root_depth_m=1.10, depletion_fraction_p=0.55),
    ),
    max_yield_t_ha=8.0,
)

TOMATO_PROCESSING = Crop(
    name="processing-tomato",
    stages=(
        CropStage("initial", 25, kc=0.60, ky=0.40, root_depth_m=0.25, depletion_fraction_p=0.45),
        CropStage("development", 35, kc=1.15, ky=0.65, root_depth_m=0.60, depletion_fraction_p=0.45),
        CropStage("mid-fruiting", 40, kc=1.15, ky=1.05, root_depth_m=0.90, depletion_fraction_p=0.40),
        CropStage("late-ripening", 25, kc=0.75, ky=0.45, root_depth_m=0.90, depletion_fraction_p=0.50),
    ),
    max_yield_t_ha=85.0,
)

LETTUCE = Crop(
    name="lettuce",
    stages=(
        CropStage("initial", 15, kc=0.70, ky=0.50, root_depth_m=0.15, depletion_fraction_p=0.30),
        CropStage("development", 20, kc=1.00, ky=0.80, root_depth_m=0.25, depletion_fraction_p=0.30),
        CropStage("mid-head", 20, kc=1.00, ky=1.00, root_depth_m=0.35, depletion_fraction_p=0.30),
        CropStage("late-harvest", 10, kc=0.95, ky=0.70, root_depth_m=0.35, depletion_fraction_p=0.35),
    ),
    max_yield_t_ha=28.0,
)

CROPS = {c.name: c for c in (SOYBEAN, MAIZE, GUASPARI_GRAPE, TOMATO_PROCESSING, LETTUCE)}
